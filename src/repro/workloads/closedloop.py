"""A closed-loop client population (docs/workloads.md).

The open-loop generators of :mod:`repro.workloads.scenarios` fire their
arrival grid regardless of what the system does with it -- the right
model for a front door fed by the internet.  A *closed-loop* population
models the other common shape: N clients, each with at most one query
outstanding, thinking for a while after every completion before issuing
the next.  Offered load then falls automatically as latency rises --
which is exactly the regime where an admission controller must prove it
degrades *gracefully* rather than merely shedding what an open-loop
flood would have dropped anyway.

Determinism contract: per-client RNG streams
(``RngRegistry(seed).stream("client<i>")``) and per-client query-id
namespaces make the issued stream identical across runs regardless of
how completions interleave.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.query import QuerySpec
from repro.sim.rng import RngRegistry
from repro.workloads.base import UniformDataset

__all__ = ["ClosedLoopWorkload"]

# Each client allocates query ids from its own slice of the namespace,
# so the stream is deterministic under any completion interleaving.
CLIENT_ID_SPAN = 10_000


class ClosedLoopWorkload:
    """N think-time clients, one outstanding query each."""

    def __init__(
        self,
        dataset: UniformDataset,
        n_nodes: int,
        n_clients: int = 8,
        duration: float = 8.0,
        think_min: float = 0.05,
        think_max: float = 0.20,
        min_bats: int = 1,
        max_bats: int = 3,
        min_proc_time: float = 0.05,
        max_proc_time: float = 0.10,
        nodes: Optional[Sequence[int]] = None,
        seed: int = 0,
        tag: str = "closed",
        tier: int = 0,
        id_base: int = 500_000,
    ):
        if n_clients < 1:
            raise ValueError("need at least one client")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= think_min <= think_max:
            raise ValueError("invalid think-time range")
        if not 1 <= min_bats <= max_bats <= dataset.n_bats:
            raise ValueError("invalid BATs-per-query range")
        if not 0 < min_proc_time <= max_proc_time:
            raise ValueError("invalid processing-time range")
        self.dataset = dataset
        self.n_nodes = n_nodes
        self.n_clients = n_clients
        self.duration = duration
        self.think_min = think_min
        self.think_max = think_max
        self.min_bats = min_bats
        self.max_bats = max_bats
        self.min_proc_time = min_proc_time
        self.max_proc_time = max_proc_time
        self.nodes = list(nodes) if nodes is not None else list(range(n_nodes))
        if not self.nodes:
            raise ValueError("need at least one arrival node")
        self.seed = seed
        self.tag = tag
        self.tier = tier
        self.id_base = id_base
        # run-time accounting (reset on every submit_to)
        self.issued = 0
        self.shed = 0
        self.failed = 0
        self.latencies: list = []

    # ------------------------------------------------------------------
    def _spec(self, client: int, rng, counter: int, now: float) -> QuerySpec:
        node = self.nodes[client % len(self.nodes)]
        count = rng.randint(self.min_bats, self.max_bats)
        bats = []
        while len(bats) < count:
            bat_id = rng.randrange(self.dataset.n_bats)
            if bat_id not in bats:
                bats.append(bat_id)
        times = [
            rng.uniform(self.min_proc_time, self.max_proc_time) for _ in bats
        ]
        return QuerySpec.simple(
            self.id_base + client * CLIENT_ID_SPAN + counter,
            node=node,
            arrival=now,
            bat_ids=bats,
            processing_times=times,
            tag=self.tag,
            tier=self.tier,
        )

    def submit_to(self, dc, gate=None) -> int:
        """Start the client population against ``dc``.

        ``dc`` is any deployment with ``sim`` and ``submit`` (classic
        ring or federation); ``gate`` optionally interposes an
        admission-controlled ``submit`` (e.g.
        :meth:`~repro.resilience.overload.OverloadController.submit`).
        A shed query costs the client a think time too -- a refused
        user backs off, they don't hammer the refused request.

        Returns the number of clients started; :attr:`issued` counts
        the queries they submit as the simulation runs.
        """
        self.issued = 0
        self.shed = 0
        self.failed = 0
        self.latencies = []
        sim = dc.sim
        registry = RngRegistry(self.seed)
        submit = gate.submit if gate is not None else dc.submit

        def think(client: int, rng) -> float:
            return rng.uniform(self.think_min, self.think_max)

        def issue(client: int, rng, counter: int) -> None:
            if sim.now >= self.duration:
                return
            spec = self._spec(client, rng, counter, sim.now)
            self.issued += 1
            proc = submit(spec)
            if proc is None:
                self.shed += 1
                sim.post(think(client, rng), issue, client, rng, counter + 1)
                return
            issued_at = sim.now

            def done(error, c=client, r=rng, k=counter, t0=issued_at):
                if error is None:
                    self.latencies.append(sim.now - t0)
                else:
                    self.failed += 1
                sim.post(think(c, r), issue, c, r, k + 1)

            proc.join().add_callback(done)

        for client in range(self.n_clients):
            rng = registry.stream(f"client{client}")
            # stagger the first issues so the population does not arrive
            # as one synchronized pulse
            sim.post(client * (self.think_min + 1e-3), issue, client, rng, 0)
        return self.n_clients
