"""Open-loop front-door workload: three engines, a cold wide burst.

The serving-tier grading scenario (docs/frontdoor.md).  One table with
a handful of equally-sized columns is partitioned over the ring, then
three tenant classes arrive open-loop -- nobody waits for answers, the
offered load is whatever the grids say:

* **kv** -- steady point probes: a single-partition footprint, the
  protected class;
* **mal baseline** -- narrow range scans (``id`` + ``val``: two
  columns of footprint, whatever the range -- the MAL planner binds
  whole columns);
* **stream** -- periodic whole-column folds;
* **mal burst** -- a :class:`ColdBurstWorkload`-shaped window of
  ``SELECT *`` scans that reference *every* column, tripling the
  per-query footprint exactly when the arrival rate steps up.

During the burst window the offered footprint-byte rate exceeds the
ring bandwidth several times over (``offered_byte_rate`` /
``capacity_ratio`` compute the exact figures from the same arithmetic
the statistics catalog uses), so *somebody* must shed; the scenario
twin grades who sheds better -- a blind byte valve or the
statistics-driven front door.

Determinism: per-class arrival grids, per-class seeded RNG streams,
``(params, seed)`` replays bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.dbms.qpu import KvLookup, StreamAggregate

__all__ = ["FrontDoorWorkload"]

# (arrival, node, request) -- request is SQL text or a QPU request object
Submission = Tuple[float, int, Any]

_VALUE_BYTES = 8  # int64 / float64 columns throughout


@dataclass
class FrontDoorWorkload:
    """Deterministic open-loop three-engine mix with a wide cold burst."""

    n_rows: int = 6000
    rows_per_partition: int = 500
    n_extra_columns: int = 3     # c0..cN beyond id/val/grp (widens SELECT *)
    n_nodes: int = 4
    kv_rate: float = 40.0        # point probes per simulated second
    mal_rate: float = 15.0       # baseline two-column range scans / s
    stream_rate: float = 3.0     # whole-column folds / s
    burst_rate: float = 30.0     # SELECT * wide scans / s inside the window
    burst_kv_rate: float = 0.0   # extra cold probes / s inside the window
    burst_stream_rate: float = 0.0  # extra wide folds / s inside the window
    burst_start: float = 1.0
    burst_end: float = 5.0
    duration: float = 6.0
    hot_rows: int = 2000         # baseline scans stay inside this prefix
    table: str = "front"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_rows < self.rows_per_partition:
            raise ValueError("need at least one full partition")
        if not 0 <= self.burst_start <= self.burst_end <= self.duration:
            raise ValueError("burst window must sit inside the run")
        if self.hot_rows > self.n_rows:
            raise ValueError("hot_rows cannot exceed n_rows")

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    @property
    def n_columns(self) -> int:
        return 3 + self.n_extra_columns

    def table_data(self) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        data = {
            "id": np.arange(self.n_rows, dtype=np.int64),
            "val": np.round(rng.uniform(0.0, 100.0, self.n_rows), 3),
            "grp": rng.integers(0, 8, self.n_rows),
        }
        for i in range(self.n_extra_columns):
            data[f"c{i}"] = np.round(rng.uniform(0.0, 1.0, self.n_rows), 3)
        return data

    def load_into(self, rdb) -> None:
        rdb.load_table(
            self.table,
            self.table_data(),
            rows_per_partition=self.rows_per_partition,
        )

    # ------------------------------------------------------------------
    # offered-load arithmetic (documented in the scenario extras)
    # ------------------------------------------------------------------
    @property
    def column_bytes(self) -> int:
        return self.n_rows * _VALUE_BYTES

    @property
    def partition_bytes(self) -> int:
        return self.rows_per_partition * _VALUE_BYTES

    def offered_byte_rate(self, in_burst: bool = True) -> float:
        """Predicted footprint bytes offered per second.

        Uses the same whole-column arithmetic as the statistics
        estimator: a baseline scan binds ``id`` + ``val``, a burst
        ``SELECT *`` binds every column, a stream fold one or two
        columns (the grid alternates), a probe one partition.
        """
        rate = (
            self.kv_rate * self.partition_bytes
            + self.mal_rate * 2 * self.column_bytes
            + self.stream_rate * 1.5 * self.column_bytes
        )
        if in_burst:
            rate += self.burst_rate * self.n_columns * self.column_bytes
            rate += self.burst_kv_rate * self.partition_bytes
            rate += self.burst_stream_rate * 2 * self.column_bytes
        return rate

    def capacity_ratio(self, bandwidth: float, in_burst: bool = True) -> float:
        """Offered footprint bytes vs ring link bandwidth."""
        return self.offered_byte_rate(in_burst) / bandwidth

    # ------------------------------------------------------------------
    # request streams
    # ------------------------------------------------------------------
    def _kv_requests(self) -> Iterator[Submission]:
        rng = random.Random(self.seed * 7919 + 1)
        for i in range(int(self.duration * self.kv_rate)):
            key = rng.randrange(self.n_rows)
            yield (
                i / self.kv_rate,
                rng.randrange(self.n_nodes),
                KvLookup(table=self.table, key=key, column="val"),
            )

    def _mal_requests(self) -> Iterator[Submission]:
        """Baseline narrow scans over the hot prefix (two columns)."""
        rng = random.Random(self.seed * 7919 + 2)
        for i in range(int(self.duration * self.mal_rate)):
            lo = rng.randrange(0, max(1, self.hot_rows - 200))
            hi = lo + rng.randrange(100, 400)
            sql = (
                f"SELECT val FROM {self.table} "
                f"WHERE id >= {lo} AND id < {hi}"
            )
            yield (i / self.mal_rate, rng.randrange(self.n_nodes), sql)

    def _stream_requests(self) -> Iterator[Submission]:
        rng = random.Random(self.seed * 7919 + 3)
        funcs = ("sum", "avg", "count", "max")
        for i in range(int(self.duration * self.stream_rate)):
            yield (
                i / self.stream_rate,
                rng.randrange(self.n_nodes),
                StreamAggregate(
                    table=self.table,
                    value_column="val",
                    func=funcs[i % len(funcs)],
                    group_column="grp" if i % 2 == 0 else None,
                ),
            )

    def _burst_requests(self) -> Iterator[Submission]:
        """The cold wide flood: every column of every row, open loop."""
        rng = random.Random(self.seed * 7919 + 4)
        window = self.burst_end - self.burst_start
        for i in range(int(window * self.burst_rate)):
            yield (
                self.burst_start + i / self.burst_rate,
                rng.randrange(self.n_nodes),
                f"SELECT * FROM {self.table}",
            )

    def _burst_kv_requests(self) -> Iterator[Submission]:
        """Extra probes riding the burst (the all-engines overload mix)."""
        rng = random.Random(self.seed * 7919 + 5)
        window = self.burst_end - self.burst_start
        for i in range(int(window * self.burst_kv_rate)):
            yield (
                self.burst_start + i / self.burst_kv_rate,
                rng.randrange(self.n_nodes),
                KvLookup(
                    table=self.table, key=rng.randrange(self.n_rows),
                    column="val",
                ),
            )

    def _burst_stream_requests(self) -> Iterator[Submission]:
        """Extra grouped folds over the cold wide columns."""
        rng = random.Random(self.seed * 7919 + 6)
        window = self.burst_end - self.burst_start
        for i in range(int(window * self.burst_stream_rate)):
            column = f"c{i % self.n_extra_columns}" if self.n_extra_columns else "val"
            yield (
                self.burst_start + i / self.burst_stream_rate,
                rng.randrange(self.n_nodes),
                StreamAggregate(
                    table=self.table, value_column=column, func="sum",
                    group_column="grp",
                ),
            )

    def submissions(self) -> List[Submission]:
        """All requests merged in arrival order (stable per class)."""
        merged = (
            list(self._kv_requests())
            + list(self._mal_requests())
            + list(self._stream_requests())
            + list(self._burst_requests())
            + list(self._burst_kv_requests())
            + list(self._burst_stream_requests())
        )
        merged.sort(key=lambda s: s[0])
        return merged

    # ------------------------------------------------------------------
    def offer_to(self, door) -> int:
        """Load the table (if absent) and push every arrival through a
        :class:`~repro.frontdoor.FrontDoor`; returns the offered count."""
        return door.offer_all(self.submissions())
