"""The 22 TPC-H queries in the engine's SQL dialect.

The paper replays *traces* of the TPC-H queries (operator durations and
BAT access sequences), not SQL text, so what matters for the section 5.4
experiment is that every query touches the right tables and columns with
a realistic operator mix.  Our dialect is conjunctive SELECT-project-
join-aggregate, so queries that rely on OR, correlated subqueries,
EXISTS, LIKE or outer joins are structurally simplified; each entry
documents its deviation in ``note``.  Categorical literals are the
integer codes of :mod:`repro.workloads.tpch.schema`; dates are day
numbers (1992-01-01 = 0, ~365 days per year).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["TpchQuery", "TPCH_QUERIES"]


@dataclass(frozen=True)
class TpchQuery:
    number: int
    name: str
    sql: str
    note: str = ""


TPCH_QUERIES: List[TpchQuery] = [
    TpchQuery(
        1,
        "pricing summary report",
        """
        SELECT l_returnflag, l_linestatus,
               sum(l_quantity) sum_qty,
               sum(l_extendedprice) sum_base_price,
               sum(l_extendedprice * (1 - l_discount)) sum_disc_price,
               avg(l_quantity) avg_qty,
               avg(l_extendedprice) avg_price,
               count(*) count_order
        FROM lineitem
        WHERE l_shipdate <= 2480
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
        """,
    ),
    TpchQuery(
        2,
        "minimum cost supplier",
        """
        SELECT s_acctbal, s_suppkey, p_partkey, ps_supplycost
        FROM part, partsupp, supplier, nation, region
        WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
          AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
          AND r_name = 2 AND p_size = 15
        ORDER BY s_acctbal DESC LIMIT 100
        """,
        note="correlated min-cost subquery dropped; same join graph",
    ),
    TpchQuery(
        3,
        "shipping priority",
        """
        SELECT o_orderkey,
               sum(l_extendedprice * (1 - l_discount)) revenue
        FROM customer, orders, lineitem
        WHERE c_mktsegment = 1
          AND c_custkey = o_custkey AND l_orderkey = o_orderkey
          AND o_orderdate < 795 AND l_shipdate > 795
        GROUP BY o_orderkey
        ORDER BY revenue DESC LIMIT 10
        """,
    ),
    TpchQuery(
        4,
        "order priority checking",
        """
        SELECT o_orderpriority, count(*) order_count
        FROM orders, lineitem
        WHERE l_orderkey = o_orderkey
          AND o_orderdate >= 850 AND o_orderdate < 940
          AND l_commitdate < l_receiptdate
        GROUP BY o_orderpriority
        ORDER BY o_orderpriority
        """,
        note="EXISTS decorrelated into a plain join",
    ),
    TpchQuery(
        5,
        "local supplier volume",
        """
        SELECT n_name, sum(l_extendedprice * (1 - l_discount)) revenue
        FROM customer, orders, lineitem, supplier, nation, region
        WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
          AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
          AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
          AND r_name = 3 AND o_orderdate >= 730 AND o_orderdate < 1095
        GROUP BY n_name
        ORDER BY revenue DESC
        """,
    ),
    TpchQuery(
        6,
        "forecasting revenue change",
        """
        SELECT sum(l_extendedprice * l_discount) revenue
        FROM lineitem
        WHERE l_shipdate >= 730 AND l_shipdate < 1095
          AND l_discount BETWEEN 0.05 AND 0.07
          AND l_quantity < 24
        """,
    ),
    TpchQuery(
        7,
        "volume shipping",
        """
        SELECT sum(l_extendedprice * (1 - l_discount)) revenue
        FROM supplier, lineitem, orders, customer, nation n1, nation n2
        WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
          AND c_custkey = o_custkey
          AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey
          AND n1.n_name = 4 AND n2.n_name = 7
          AND l_shipdate BETWEEN 730 AND 1460
        """,
        note="one nation-pair direction (no OR); per-year grouping dropped",
    ),
    TpchQuery(
        8,
        "national market share",
        """
        SELECT s_nationkey, sum(l_extendedprice * (1 - l_discount)) volume
        FROM part, lineitem, supplier, orders, customer, nation, region
        WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
          AND l_orderkey = o_orderkey AND o_custkey = c_custkey
          AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey
          AND r_name = 1 AND p_type = 100
          AND o_orderdate BETWEEN 1095 AND 1825
        GROUP BY s_nationkey
        ORDER BY volume DESC
        """,
        note="market-share ratio (CASE) dropped; same 7-table join",
    ),
    TpchQuery(
        9,
        "product type profit measure",
        """
        SELECT n_name, sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) profit
        FROM part, supplier, lineitem, partsupp, orders, nation
        WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
          AND ps_partkey = l_partkey AND p_partkey = l_partkey
          AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
          AND p_mfgr = 2
        GROUP BY n_name
        ORDER BY profit DESC
        """,
        note="p_name LIKE replaced by a p_mfgr filter; per-year grouping dropped",
    ),
    TpchQuery(
        10,
        "returned item reporting",
        """
        SELECT c_custkey, sum(l_extendedprice * (1 - l_discount)) revenue
        FROM customer, orders, lineitem, nation
        WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
          AND c_nationkey = n_nationkey
          AND o_orderdate >= 850 AND o_orderdate < 940
          AND l_returnflag = 2
        GROUP BY c_custkey
        ORDER BY revenue DESC LIMIT 20
        """,
    ),
    TpchQuery(
        11,
        "important stock identification",
        """
        SELECT ps_partkey, sum(ps_supplycost * ps_availqty) value
        FROM partsupp, supplier, nation
        WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
          AND n_name = 8
        GROUP BY ps_partkey
        ORDER BY value DESC LIMIT 20
        """,
        note="global-fraction HAVING threshold replaced by LIMIT",
    ),
    TpchQuery(
        12,
        "shipping modes and order priority",
        """
        SELECT l_shipmode, count(*) line_count
        FROM orders, lineitem
        WHERE o_orderkey = l_orderkey
          AND l_shipmode IN (2, 4)
          AND l_commitdate < l_receiptdate
          AND l_shipdate < l_commitdate
          AND l_receiptdate >= 730 AND l_receiptdate < 1095
        GROUP BY l_shipmode
        ORDER BY l_shipmode
        """,
        note="high/low priority CASE split into a single count",
    ),
    TpchQuery(
        13,
        "customer distribution",
        """
        SELECT c_custkey, count(*) c_count
        FROM customer, orders
        WHERE o_custkey = c_custkey
        GROUP BY c_custkey
        ORDER BY c_count DESC LIMIT 20
        """,
        note="LEFT JOIN + NOT LIKE approximated by an inner join",
    ),
    TpchQuery(
        14,
        "promotion effect",
        """
        SELECT sum(l_extendedprice * (1 - l_discount)) promo_revenue
        FROM lineitem, part
        WHERE l_partkey = p_partkey
          AND l_shipdate >= 1000 AND l_shipdate < 1030
          AND p_type < 50
        """,
        note="promo-share CASE ratio replaced by the filtered numerator",
    ),
    TpchQuery(
        15,
        "top supplier",
        """
        SELECT l_suppkey, sum(l_extendedprice * (1 - l_discount)) total_revenue
        FROM lineitem
        WHERE l_shipdate >= 1100 AND l_shipdate < 1190
        GROUP BY l_suppkey
        ORDER BY total_revenue DESC LIMIT 1
        """,
        note="revenue view + MAX subquery folded into ORDER BY/LIMIT",
    ),
    TpchQuery(
        16,
        "parts/supplier relationship",
        """
        SELECT p_brand, p_size, count(DISTINCT ps_suppkey) supplier_cnt
        FROM partsupp, part
        WHERE p_partkey = ps_partkey
          AND p_brand != 11
          AND p_size IN (9, 14, 19, 23, 36, 45, 49, 3)
        GROUP BY p_brand, p_size
        ORDER BY supplier_cnt DESC LIMIT 10
        """,
        note="NOT IN complaint-supplier subquery dropped",
    ),
    TpchQuery(
        17,
        "small-quantity-order revenue",
        """
        SELECT sum(l_extendedprice * 0.142857) avg_yearly
        FROM lineitem, part
        WHERE p_partkey = l_partkey
          AND p_brand = 3 AND p_container = 12
          AND l_quantity < 10
        """,
        note="per-part AVG subquery replaced by a fixed quantity cut",
    ),
    TpchQuery(
        18,
        "large volume customer",
        """
        SELECT o_orderkey, sum(l_quantity) total_qty
        FROM orders, lineitem
        WHERE o_orderkey = l_orderkey
        GROUP BY o_orderkey
        HAVING sum(l_quantity) > 100
        ORDER BY total_qty DESC LIMIT 100
        """,
        note="customer join folded away; HAVING threshold scaled to the"
        " generator's ~4 lines/order",
    ),
    TpchQuery(
        19,
        "discounted revenue",
        """
        SELECT sum(l_extendedprice * (1 - l_discount)) revenue
        FROM lineitem, part
        WHERE p_partkey = l_partkey
          AND p_brand = 5 AND p_container IN (1, 2, 3, 4)
          AND l_quantity BETWEEN 1 AND 11
          AND p_size BETWEEN 1 AND 5
          AND l_shipmode IN (0, 1)
          AND l_shipinstruct = 0
        """,
        note="one branch of the three-way OR",
    ),
    TpchQuery(
        20,
        "potential part promotion",
        """
        SELECT s_suppkey, count(*) offers
        FROM supplier, nation, partsupp
        WHERE s_nationkey = n_nationkey AND ps_suppkey = s_suppkey
          AND n_name = 5 AND ps_availqty > 5000
        GROUP BY s_suppkey
        ORDER BY offers DESC LIMIT 20
        """,
        note="nested IN-subqueries decorrelated into a join + filter",
    ),
    TpchQuery(
        21,
        "suppliers who kept orders waiting",
        """
        SELECT s_suppkey, count(*) numwait
        FROM supplier, lineitem, orders, nation
        WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
          AND s_nationkey = n_nationkey
          AND o_orderstatus = 0 AND n_name = 6
          AND l_receiptdate > l_commitdate
        GROUP BY s_suppkey
        ORDER BY numwait DESC LIMIT 100
        """,
        note="EXISTS / NOT EXISTS pair dropped; same join core",
    ),
    TpchQuery(
        22,
        "global sales opportunity",
        """
        SELECT c_nationkey, count(*) numcust, sum(c_acctbal) totacctbal
        FROM customer
        WHERE c_acctbal > 7000
        GROUP BY c_nationkey
        ORDER BY c_nationkey
        """,
        note="phone-prefix substring and NOT EXISTS anti-join dropped",
    ),
]
