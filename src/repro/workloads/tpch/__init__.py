"""The TPC-H trace workload of section 5.4.

The paper "starts with a calibration of the simulator using traces from
TPC-H ran against a single node MonetDB instance ... Such traces contain
the execution time for each operator as well as the information about
intermediate result sizes."  We reproduce the same method against our
own engine:

1. :mod:`repro.workloads.tpch.schema` generates a TPC-H-like database
   at a configurable scale factor (integer-coded categorical columns),
2. :mod:`repro.workloads.tpch.queries` defines the 22 queries in the
   supported SQL dialect (documented simplifications),
3. :mod:`repro.workloads.tpch.calibration` executes the DC-optimized
   plans locally, recording per-operator costs and the pin schedule --
   the paper's OpT rule -- into replayable :class:`QueryTrace` objects,
4. :mod:`repro.workloads.tpch.workload` replays those traces against a
   simulated ring with four CPU cores per node (Table 4).
"""

from repro.workloads.tpch.calibration import QueryTrace, calibrate
from repro.workloads.tpch.queries import TPCH_QUERIES
from repro.workloads.tpch.schema import generate_tpch
from repro.workloads.tpch.workload import TpchExperiment, TpchResult

__all__ = [
    "QueryTrace",
    "TPCH_QUERIES",
    "TpchExperiment",
    "TpchResult",
    "calibrate",
    "generate_tpch",
]
