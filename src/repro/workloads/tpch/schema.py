"""A dbgen-like TPC-H data generator.

Generates the eight TPC-H tables at a configurable scale factor with the
official cardinality ratios (SF 1 = 6M lineitems).  Categorical columns
(names, segments, priorities, flags) are integer-coded: the paper's
engine never materialises strings on the critical path either -- MonetDB
maps them through dictionary-encoded columns -- and integer codes keep
the BAT payloads dense.

Dates are day numbers starting at 1992-01-01 = 0 with the TPC-H range of
~2557 days (1992-01-01 .. 1998-12-31).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["generate_tpch", "TPCH_RATIOS", "DATE_LO", "DATE_HI"]

# rows per table at scale factor 1.0
TPCH_RATIOS: Dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,  # ~4 lines per order on average
}

DATE_LO = 0       # 1992-01-01
DATE_HI = 2557    # ~1998-12-31


def generate_tpch(scale_factor: float = 0.01, seed: int = 0) -> Dict[str, Dict[str, np.ndarray]]:
    """Generate all eight tables; returns {table: {column: array}}."""
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    rng = np.random.default_rng(seed)

    def rows(table: str) -> int:
        if table in ("region", "nation"):
            return TPCH_RATIOS[table]
        return max(int(TPCH_RATIOS[table] * scale_factor), 10)

    n_supp = rows("supplier")
    n_cust = rows("customer")
    n_part = rows("part")
    n_psupp = rows("partsupp")
    n_ord = rows("orders")
    n_line = rows("lineitem")

    region = {
        "r_regionkey": np.arange(5, dtype=np.int64),
        "r_name": np.arange(5, dtype=np.int64),
    }
    nation = {
        "n_nationkey": np.arange(25, dtype=np.int64),
        "n_regionkey": rng.integers(0, 5, 25),
        "n_name": np.arange(25, dtype=np.int64),
    }
    supplier = {
        "s_suppkey": np.arange(n_supp, dtype=np.int64),
        "s_nationkey": rng.integers(0, 25, n_supp),
        "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_supp), 2),
    }
    customer = {
        "c_custkey": np.arange(n_cust, dtype=np.int64),
        "c_nationkey": rng.integers(0, 25, n_cust),
        "c_mktsegment": rng.integers(0, 5, n_cust),   # 5 segments
        "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_cust), 2),
    }
    part = {
        "p_partkey": np.arange(n_part, dtype=np.int64),
        "p_size": rng.integers(1, 51, n_part),
        "p_retailprice": np.round(900 + rng.uniform(0, 1200, n_part), 2),
        "p_brand": rng.integers(0, 25, n_part),       # 25 brands
        "p_type": rng.integers(0, 150, n_part),       # 150 types
        "p_mfgr": rng.integers(0, 5, n_part),
        "p_container": rng.integers(0, 40, n_part),
    }
    partsupp = {
        "ps_partkey": rng.integers(0, n_part, n_psupp),
        "ps_suppkey": rng.integers(0, n_supp, n_psupp),
        "ps_supplycost": np.round(rng.uniform(1, 1000, n_psupp), 2),
        "ps_availqty": rng.integers(1, 10_000, n_psupp),
    }
    o_orderdate = rng.integers(DATE_LO, DATE_HI - 121, n_ord)
    orders = {
        "o_orderkey": np.arange(n_ord, dtype=np.int64),
        "o_custkey": rng.integers(0, n_cust, n_ord),
        "o_orderdate": o_orderdate,
        "o_totalprice": np.round(rng.uniform(800, 500_000, n_ord), 2),
        "o_orderpriority": rng.integers(0, 5, n_ord),
        "o_shippriority": np.zeros(n_ord, dtype=np.int64),
        "o_orderstatus": rng.integers(0, 3, n_ord),
    }
    l_orderkey = rng.integers(0, n_ord, n_line)
    ship_lag = rng.integers(1, 122, n_line)
    l_shipdate = o_orderdate[l_orderkey] + ship_lag
    lineitem = {
        "l_orderkey": l_orderkey,
        "l_partkey": rng.integers(0, n_part, n_line),
        "l_suppkey": rng.integers(0, n_supp, n_line),
        "l_quantity": rng.integers(1, 51, n_line).astype(np.float64),
        "l_extendedprice": np.round(rng.uniform(900, 105_000, n_line), 2),
        "l_discount": np.round(rng.uniform(0.0, 0.10, n_line), 2),
        "l_tax": np.round(rng.uniform(0.0, 0.08, n_line), 2),
        "l_shipdate": l_shipdate,
        "l_commitdate": l_shipdate + rng.integers(-30, 31, n_line),
        "l_receiptdate": l_shipdate + rng.integers(1, 31, n_line),
        "l_returnflag": rng.integers(0, 3, n_line),
        "l_linestatus": rng.integers(0, 2, n_line),
        "l_shipmode": rng.integers(0, 7, n_line),
        "l_shipinstruct": rng.integers(0, 4, n_line),
    }
    return {
        "region": region,
        "nation": nation,
        "supplier": supplier,
        "customer": customer,
        "part": part,
        "partsupp": partsupp,
        "orders": orders,
        "lineitem": lineitem,
    }
