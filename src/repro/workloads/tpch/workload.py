"""The Table 4 experiment: TPC-H trace replay on rings of 1..8 nodes.

Paper setup (section 5.4): "In total, the workload for each node
contains 1200 queries.  The query registration rate is 8 queries per
second ... The scheduling of the queries follows a Gaussian distribution
with mean 10 and standard deviation 2.  On this distribution the fastest
queries are the ones with higher probability to be scheduled. ... Each
node is composed by four cores."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import DataCyclotronConfig
from repro.core.query import PinStep, QuerySpec
from repro.core.ring import DataCyclotron
from repro.dbms.database import Database
from repro.dbms.cost import OperatorCostModel, default_cost_model
from repro.workloads.tpch.calibration import QueryTrace, calibrate
from repro.workloads.tpch.queries import TPCH_QUERIES
from repro.workloads.tpch.schema import generate_tpch

__all__ = ["TpchResult", "TpchExperiment"]


@dataclass
class TpchResult:
    """One row of Table 4."""

    label: str
    n_nodes: int
    exec_time: float
    throughput: float
    throughput_per_node: float
    cpu_pct: float

    def row(self) -> Tuple[str, float, float, float, float]:
        return (
            self.label,
            round(self.exec_time, 1),
            round(self.throughput, 1),
            round(self.throughput_per_node, 1),
            round(self.cpu_pct, 1),
        )


class TpchExperiment:
    """Calibrate once, replay on rings of any size."""

    def __init__(
        self,
        scale_factor: float = 0.01,
        seed: int = 0,
        rows_per_partition: Optional[int] = None,
        cost_model: Optional[OperatorCostModel] = None,
        time_scale: Optional[float] = None,
        target_mean_net_time: float = 1.05,
    ):
        """Generate data, load the local engine, calibrate the traces.

        ``time_scale`` stretches calibrated operator times; by default it
        is derived so the mean net query time matches
        ``target_mean_net_time`` core-seconds -- the magnitude implied by
        the paper's single-node row (1200 queries, 317 s, 4 cores at
        99.7 %).
        """
        self.scale_factor = scale_factor
        self.seed = seed
        self.db = Database()
        data = generate_tpch(scale_factor=scale_factor, seed=seed)
        for table, columns in data.items():
            self.db.load_table(table, columns, rows_per_partition=rows_per_partition)
        cost_model = cost_model if cost_model is not None else default_cost_model()
        raw = sorted(
            calibrate(self.db, TPCH_QUERIES, cost_model), key=lambda t: t.net_time
        )
        if time_scale is None:
            # Normalise so the *scheduled* mix (ranks ~N(10,2) over the
            # fastest-first ordering) has the paper's mean net time --
            # its single-node row implies ~1.05 core-seconds per query
            # (1200 queries, 317 s, 4 cores at 99.7%), which makes the
            # single node CPU-bound as in Table 4.
            weights = self._rank_weights(len(raw))
            expected = sum(w * t.net_time for w, t in zip(weights, raw))
            time_scale = target_mean_net_time / expected if expected > 0 else 1.0
        self.time_scale = time_scale
        # ranked fastest-first: rank ~N(10, 2) favours the fast half
        self.traces: List[QueryTrace] = [t.scaled(time_scale) for t in raw]

    @staticmethod
    def _rank_weights(n: int, mean: float = 10.0, std: float = 2.0) -> List[float]:
        """P(rank = r) under the rounded, clipped Gaussian query pick."""
        import math

        def cdf(x: float) -> float:
            return 0.5 * (1 + math.erf((x - mean) / (std * math.sqrt(2))))

        weights = []
        for r in range(1, n + 1):
            lo = -math.inf if r == 1 else r - 0.5
            hi = math.inf if r == n else r + 0.5
            lo_p = 0.0 if lo == -math.inf else cdf(lo)
            hi_p = 1.0 if hi == math.inf else cdf(hi)
            weights.append(hi_p - lo_p)
        return weights

    # ------------------------------------------------------------------
    def pick_trace(self, rng: random.Random, mean: float = 10.0, std: float = 2.0) -> QueryTrace:
        rank = int(round(rng.gauss(mean, std)))
        rank = max(1, min(len(self.traces), rank))
        return self.traces[rank - 1]

    # ------------------------------------------------------------------
    def build_ring(
        self,
        n_nodes: int,
        queries_per_node: int = 1200,
        registration_rate: float = 8.0,
        size_scale: float = 1.0,
        config: Optional[DataCyclotronConfig] = None,
        seed: Optional[int] = None,
        transfer_mode: str = "rdma",
    ) -> Tuple[DataCyclotron, List[QuerySpec]]:
        """A ring loaded with the TPC-H partition BATs plus the specs.

        ``size_scale`` inflates BAT wire sizes, emulating a larger scale
        factor's data volumes without regenerating data (the calibration
        ran at ``scale_factor``; the paper's is SF-5).
        """
        if config is None:
            config = DataCyclotronConfig(
                n_nodes=n_nodes,
                cores_per_node=4,
                cpu_constrained=True,
                loit_static=None,
                transfer_mode=transfer_mode,
                seed=self.seed if seed is None else seed,
            )
        dc = DataCyclotron(config)
        key_to_id: Dict[tuple, int] = {}
        for handle in self.db.catalog.all_handles():
            size = max(int(handle.bat.nbytes * size_scale), 1)
            wire = size + config.bat_header_size
            if wire > config.bat_queue_capacity:
                raise ValueError(
                    f"BAT {handle.key} scales to {wire} wire bytes, beyond the "
                    f"{config.bat_queue_capacity}-byte BAT queue: partition the "
                    f"tables (rows_per_partition) or lower size_scale"
                )
            dc.add_bat(handle.bat_id, size=size)
            key_to_id[handle.key] = handle.bat_id

        rng = random.Random(self.seed if seed is None else seed)
        specs: List[QuerySpec] = []
        query_id = 0
        interval = 1.0 / registration_rate
        for node in range(n_nodes):
            for k in range(queries_per_node):
                trace = self.pick_trace(rng)
                steps = [
                    PinStep(bat_id=key_to_id[s.bat_key], op_time=s.op_time)
                    for s in trace.steps
                ]
                specs.append(
                    QuerySpec(
                        query_id=query_id,
                        node=node,
                        arrival=k * interval,
                        steps=steps,
                        tail_time=trace.tail_time,
                        tag=f"q{trace.number}",
                    )
                )
                query_id += 1
        return dc, specs

    # ------------------------------------------------------------------
    def run(
        self,
        n_nodes: int,
        queries_per_node: int = 1200,
        registration_rate: float = 8.0,
        size_scale: float = 1.0,
        max_time: float = 3600.0,
        seed: Optional[int] = None,
        transfer_mode: str = "rdma",
    ) -> TpchResult:
        """One Table 4 row: replay the workload on an ``n_nodes`` ring."""
        dc, specs = self.build_ring(
            n_nodes,
            queries_per_node=queries_per_node,
            registration_rate=registration_rate,
            size_scale=size_scale,
            seed=seed,
            transfer_mode=transfer_mode,
        )
        dc.submit_all(specs)
        finished = dc.run_until_done(max_time=max_time, check_interval=2.0)
        if not finished:
            raise RuntimeError(
                f"TPC-H replay on {n_nodes} nodes did not finish by {max_time}s"
            )
        exec_time = max(
            rec.finished_at
            for rec in dc.metrics.queries.values()
            if rec.finished_at is not None
        )
        total = len(specs)
        return TpchResult(
            label=str(n_nodes),
            n_nodes=n_nodes,
            exec_time=exec_time,
            throughput=total / exec_time,
            throughput_per_node=total / exec_time / n_nodes,
            cpu_pct=100.0 * dc.cpu_utilisation(horizon=exec_time),
        )

    # ------------------------------------------------------------------
    def monetdb_row(
        self, single_node: TpchResult, efficiency: float = 0.70
    ) -> TpchResult:
        """The measured-MonetDB contrast row of Table 4.

        The paper attributes the gap between real MonetDB (420 s, 70 %
        CPU) and the simulated single node (317 s, 99.7 %) to thread
        management and client context switches.  We model that contrast:
        the same work at ``efficiency`` CPU utilisation.
        """
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        slowdown = max((single_node.cpu_pct / 100.0) / efficiency, 1.0)
        exec_time = single_node.exec_time * slowdown
        total = single_node.throughput * single_node.exec_time
        return TpchResult(
            label="MonetDB",
            n_nodes=1,
            exec_time=exec_time,
            throughput=total / exec_time,
            throughput_per_node=total / exec_time,
            cpu_pct=100.0 * efficiency,
        )
