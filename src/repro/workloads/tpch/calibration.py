"""Trace calibration: run the 22 plans, record the pin schedule + OpT.

Paper, section 5.4: "The scheduling algorithm for the pin calls can be
exemplified using the code in Table 2.  The first pin call, pin(X3), is
scheduled OpT1 msec after the query registration.  The second one, is
scheduled OpT2 msec after the X3 reception by the previous pin call.
The OpTx for a pin call is the sum of all operators execution times,
since the last pin call, until the actual pin call.  A query is finished
T msec after, the sum of the remaining operators' execution times, after
the last pin call."

:func:`calibrate` executes each DC-optimized plan against the local
engine with an instrumented registry: every kernel operator runs for
real (so intermediate sizes are the true ones) and its cost -- from the
same :class:`~repro.dbms.cost.OperatorCostModel` the distributed
executor charges (one canonical factory: :func:`~repro.dbms.cost.default_cost_model`) -- accumulates into the OpT of the next pin call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dbms.database import Database
from repro.dbms.cost import OperatorCostModel, default_cost_model
from repro.dbms.interpreter import Interpreter
from repro.workloads.tpch.queries import TPCH_QUERIES, TpchQuery

__all__ = ["TraceStep", "QueryTrace", "calibrate", "load_traces", "save_traces"]

BatKey = Tuple[str, str, str, int]


@dataclass(frozen=True)
class TraceStep:
    """One pin call: the BAT it needs and the OpT preceding it."""

    bat_key: BatKey
    op_time: float


@dataclass
class QueryTrace:
    """A replayable execution trace of one TPC-H query."""

    number: int
    name: str
    steps: List[TraceStep]
    tail_time: float

    @property
    def net_time(self) -> float:
        """Net execution time with all data local (paper terminology)."""
        return sum(s.op_time for s in self.steps) + self.tail_time

    @property
    def bat_keys(self) -> List[BatKey]:
        seen = set()
        out = []
        for step in self.steps:
            if step.bat_key not in seen:
                seen.add(step.bat_key)
                out.append(step.bat_key)
        return out

    def scaled(self, time_scale: float) -> "QueryTrace":
        """A copy with every operator time multiplied by ``time_scale``."""
        return QueryTrace(
            number=self.number,
            name=self.name,
            steps=[
                TraceStep(bat_key=s.bat_key, op_time=s.op_time * time_scale)
                for s in self.steps
            ],
            tail_time=self.tail_time * time_scale,
        )

    # ------------------------------------------------------------------
    # persistence: calibrate once, replay anywhere
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "number": self.number,
            "name": self.name,
            "tail_time": self.tail_time,
            "steps": [
                {"bat_key": list(s.bat_key), "op_time": s.op_time}
                for s in self.steps
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryTrace":
        return cls(
            number=int(data["number"]),
            name=str(data["name"]),
            tail_time=float(data["tail_time"]),
            steps=[
                TraceStep(
                    bat_key=(
                        str(s["bat_key"][0]),
                        str(s["bat_key"][1]),
                        str(s["bat_key"][2]),
                        int(s["bat_key"][3]),
                    ),
                    op_time=float(s["op_time"]),
                )
                for s in data["steps"]
            ],
        )


def save_traces(traces: List["QueryTrace"], path) -> None:
    """Write calibrated traces as JSON (the shareable trace artefact)."""
    import json
    from pathlib import Path

    Path(path).write_text(
        json.dumps([t.to_dict() for t in traces], indent=1) + "\n"
    )


def load_traces(path) -> List["QueryTrace"]:
    """Read traces written by :func:`save_traces`."""
    import json
    from pathlib import Path

    return [QueryTrace.from_dict(d) for d in json.loads(Path(path).read_text())]


class _Tracer:
    """Instrumented execution of one DC plan against the local catalog."""

    def __init__(self, db: Database, cost_model: OperatorCostModel):
        self.db = db
        self.cost_model = cost_model

    def trace(self, query: TpchQuery) -> QueryTrace:
        planned = self.db.compile_dc(query.sql)
        steps: List[TraceStep] = []
        acc = 0.0
        catalog = self.db.catalog
        base = dict(self.db.interpreter.registry)

        def wrap(fn):
            def runner(*args):
                nonlocal acc
                result = fn(*args)
                acc += self.cost_model.cost(args, result)
                return result

            return runner

        registry = {name: wrap(fn) for name, fn in base.items()}

        def dc_request(schema: str, table: str, column: str, partition: int):
            return catalog.handle(schema, table, column, partition)

        def dc_pin(handle):
            nonlocal acc
            steps.append(TraceStep(bat_key=handle.key, op_time=acc))
            acc = 0.0
            return handle.bat

        registry["datacyclotron.request"] = dc_request
        registry["datacyclotron.pin"] = dc_pin
        registry["datacyclotron.unpin"] = lambda bat: None

        Interpreter(registry).run(planned.plan)
        return QueryTrace(
            number=query.number, name=query.name, steps=steps, tail_time=acc
        )


def calibrate(
    db: Database,
    queries: Optional[List[TpchQuery]] = None,
    cost_model: Optional[OperatorCostModel] = None,
) -> List[QueryTrace]:
    """Produce one trace per query against an already-loaded database."""
    queries = queries if queries is not None else TPCH_QUERIES
    cost_model = cost_model if cost_model is not None else default_cost_model()
    tracer = _Tracer(db, cost_model)
    return [tracer.trace(q) for q in queries]
