"""Workload generators for the section 5 experiments.

* :mod:`repro.workloads.base` -- the shared dataset builder (1000 BATs
  of 1-10 MB, uniformly spread; section 5 "Setup") and helpers,
* :mod:`repro.workloads.uniform` -- the section 5.1 micro-benchmark,
* :mod:`repro.workloads.skewed` -- the section 5.2 skewed workloads
  SW1..SW4 (Table 3),
* :mod:`repro.workloads.gaussian` -- the section 5.3 Gaussian access
  pattern,
* :mod:`repro.workloads.tpch` -- the section 5.4 TPC-H trace workload
  with its calibration pass,
* :mod:`repro.workloads.scenarios` -- production-shaped generators
  (diurnal, flash-crowd, multi-tenant, locality-shift) for the SLO
  scenario suite (docs/workloads.md),
* :mod:`repro.workloads.closedloop` -- N think-time clients with one
  outstanding query each, for graceful-degradation experiments
  (docs/overload.md),
* :mod:`repro.workloads.mixed` -- the mixed-engine workload driving all
  three QPU classes through one ring economy (docs/qpu.md),
* :mod:`repro.workloads.suite` -- the named scenario registry shared by
  ``repro scenarios`` and ``benchmarks/bench_slo.py``.
"""

from repro.workloads.base import UniformDataset, populate_ring
from repro.workloads.closedloop import ClosedLoopWorkload
from repro.workloads.gaussian import GaussianWorkload
from repro.workloads.mixed import MixedEngineWorkload
from repro.workloads.scenarios import (
    ColdBurstWorkload,
    DiurnalWorkload,
    FlashCrowdWorkload,
    LocalityShiftWorkload,
    MultiTenantWorkload,
    ZipfSampler,
)
from repro.workloads.skewed import SkewedPhase, SkewedWorkload, paper_phases
from repro.workloads.uniform import UniformWorkload

__all__ = [
    "ClosedLoopWorkload",
    "ColdBurstWorkload",
    "DiurnalWorkload",
    "FlashCrowdWorkload",
    "GaussianWorkload",
    "LocalityShiftWorkload",
    "MixedEngineWorkload",
    "MultiTenantWorkload",
    "SkewedPhase",
    "SkewedWorkload",
    "UniformDataset",
    "UniformWorkload",
    "ZipfSampler",
    "paper_phases",
    "populate_ring",
]
