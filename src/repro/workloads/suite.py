"""The named scenario suite behind ``repro scenarios`` (docs/workloads.md).

Each scenario builds a deployment (classic ring or federation), attaches
an :class:`~repro.metrics.slo.SloCollector` to the query lifecycle,
drives one of the :mod:`repro.workloads.scenarios` generators through
it, and returns an SLO verdict plus scenario-specific extras:

* ``diurnal`` -- day/night load swing on a classic ring,
* ``flash-crowd`` -- a step burst far above ring capacity,
* ``multi-tenant`` -- Zipf tenants with per-tenant SLOs and fairness,
* ``locality-shift`` -- drifting interest over block-placed federation
  data, triggering organic cross-ring fetches and migrations,
* ``gateway-chaos`` -- a gateway crash mid-workload, run twice (serve
  handoff on and off) so the p999 tail the handoff removes is measured
  in the same report,
* ``mixed-engine`` -- KV probes, MAL scans and streaming folds sharing
  one ring economy, graded per engine class (docs/qpu.md): p99 for the
  point lookups, sustained throughput for the streaming aggregates.

Everything is deterministic per seed: ``run_scenario(name, seed)``
returns a bit-identical result dict on every call, which is what the
CI ``scenario-smoke`` job and ``benchmarks/bench_slo.py`` rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import MB, DataCyclotronConfig
from repro.core.ring import DataCyclotron
from repro.dbms.executor import RingDatabase
from repro.metrics.slo import (
    EngineSloTarget,
    SloCollector,
    SloTarget,
    validate_verdict,
)
from repro.multiring.config import MultiRingConfig
from repro.multiring.federation import RingFederation
from repro.workloads.base import UniformDataset, Workload, populate_ring
from repro.workloads.mixed import MixedEngineWorkload
from repro.workloads.scenarios import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    LocalityShiftWorkload,
    MultiTenantWorkload,
)
__all__ = [
    "MIXED_ENGINE_TARGETS",
    "SCENARIOS",
    "ScenarioSpec",
    "run_scenario",
    "run_suite",
    "scenario_names",
]

MAX_TIME = 600.0


@dataclass(frozen=True)
class ScenarioSpec:
    """One named scenario: a runner plus its declared SLO target."""

    name: str
    description: str
    target: SloTarget
    runner: Callable[[int, bool, SloTarget], Tuple[Dict, Dict]]

    def run(self, seed: int, quick: bool) -> Dict:
        verdict, extras = self.runner(seed, quick, self.target)
        validate_verdict(verdict)
        return {
            "name": self.name,
            "seed": seed,
            "quick": quick,
            "verdict": verdict,
            "extras": extras,
        }


# ----------------------------------------------------------------------
# shared deployment builders
# ----------------------------------------------------------------------
def _classic_ring(dataset: UniformDataset, seed: int) -> DataCyclotron:
    """A 4-node classic ring with the quick-benchmark speed knobs."""
    dc = DataCyclotron(DataCyclotronConfig(
        n_nodes=4,
        seed=seed,
        bandwidth=40 * MB,
        bat_queue_capacity=15 * MB,
        disk_latency=1e-4,
        load_all_interval=0.02,
    ))
    populate_ring(dc, dataset)
    return dc


def _run_classic(
    workload: Workload,
    dataset: UniformDataset,
    seed: int,
    target: SloTarget,
    scenario: str,
) -> Tuple[Dict, Dict]:
    dc = _classic_ring(dataset, seed)
    slo = SloCollector().attach(dc.bus)
    submitted = workload.submit_to(dc)
    completed = dc.run_until_done(max_time=MAX_TIME)
    verdict = slo.verdict(scenario, seed, target)
    extras = {
        "submitted": submitted,
        "completed_in_time": completed,
        "sim_time": round(dc.sim.now, 6),
    }
    return verdict, extras


def _block_federation(
    dataset: UniformDataset,
    seed: int,
    n_rings: int,
    nodes_per_ring: int,
    resilience: bool = False,
    **multiring_kwargs,
) -> RingFederation:
    """A federation with *contiguous block* data placement: BAT ids map
    to rings in order, so a drifting interest centre walks from one
    ring's data into the next (the locality-shift premise)."""
    base = DataCyclotronConfig(
        n_nodes=nodes_per_ring,  # replaced per ring by MultiRingConfig
        seed=seed,
        bandwidth=40 * MB,
        bat_queue_capacity=15 * MB,
        disk_latency=1e-4,
        load_all_interval=0.02,
        resend_timeout=0.5,
        resend_backoff_base=2.0,
        max_resends=6,
        resilience=resilience,
        replication_k=2 if resilience else 1,
    )
    fed = RingFederation(MultiRingConfig(
        base=base,
        n_rings=n_rings,
        nodes_per_ring=nodes_per_ring,
        gateways_per_ring=1,
        splitmerge_interval=0.0,  # fixed topology: measure the workload
        **multiring_kwargs,
    ))
    n = dataset.n_bats
    for bat_id, size in sorted(dataset.sizes.items()):
        fed.add_bat(bat_id, size, ring=bat_id * n_rings // n)
    return fed


def _attach_federation(fed: RingFederation) -> SloCollector:
    slo = SloCollector()
    for ring in fed.rings:
        slo.attach(ring.bus)
    return slo


# ----------------------------------------------------------------------
# the scenarios
# ----------------------------------------------------------------------
def _dataset(seed: int, quick: bool) -> UniformDataset:
    if quick:
        return UniformDataset(n_bats=120, min_size=MB, max_size=2 * MB, seed=seed)
    return UniformDataset(n_bats=1000, min_size=MB, max_size=10 * MB, seed=seed)


def _run_diurnal(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    dataset = _dataset(seed, quick)
    workload = DiurnalWorkload(
        dataset,
        n_nodes=4,
        base_rate=40.0 if quick else 80.0,
        amplitude=0.8,
        period=4.0 if quick else 16.0,
        duration=8.0 if quick else 32.0,
        seed=seed,
    )
    verdict, extras = _run_classic(workload, dataset, seed, target, "diurnal")
    extras["peak_rate"] = workload.rate_at(workload.period / 2)
    extras["trough_rate"] = workload.rate_at(0.0)
    return verdict, extras


def _run_flash_crowd(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    dataset = _dataset(seed, quick)
    workload = FlashCrowdWorkload(
        dataset,
        n_nodes=4,
        base_rate=25.0 if quick else 60.0,
        burst_factor=8.0,
        burst_start=3.0,
        burst_duration=1.5 if quick else 4.0,
        hot_set_size=8,
        duration=8.0 if quick else 20.0,
        seed=seed,
    )
    verdict, extras = _run_classic(workload, dataset, seed, target, "flash-crowd")
    extras["burst_rate"] = workload.rate_at(workload.burst_start)
    return verdict, extras


def _run_multi_tenant(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    dataset = _dataset(seed, quick)
    workload = MultiTenantWorkload(
        dataset,
        n_nodes=4,
        n_tenants=4,
        total_rate=50.0 if quick else 120.0,
        duration=7.0 if quick else 20.0,
        seed=seed,
    )
    verdict, extras = _run_classic(workload, dataset, seed, target, "multi-tenant")
    extras["tenant_shares"] = {
        f"tenant{i}": round(workload.tenant_share(i), 6)
        for i in range(workload.n_tenants)
    }
    return verdict, extras


def _run_locality_shift(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    dataset = _dataset(seed, quick)
    fed = _block_federation(
        dataset, seed,
        n_rings=3, nodes_per_ring=3,
        placement_interval=0.25,
        migration_patience=2,
        ship_threshold=0.0,  # fetch, don't ship: migrations must carry the load
    )
    slo = _attach_federation(fed)
    # every query arrives at ring 0 (the clients live in one region);
    # the interest centre drifts out of ring 0's block into rings 1 and
    # 2, so the foreign-fetch pressure re-homes the hot set to ring 0
    workload = LocalityShiftWorkload(
        dataset,
        n_nodes=fed.config.total_nodes,
        nodes=list(range(fed.config.nodes_per_ring)),
        rate=40.0 if quick else 100.0,
        duration=8.0 if quick else 24.0,
        seed=seed,
    )
    submitted = workload.submit_to(fed)
    completed = fed.run_until_done(max_time=MAX_TIME)
    summary = fed.summary()
    verdict = slo.verdict("locality-shift", seed, target)
    extras = {
        "submitted": submitted,
        "completed_in_time": completed,
        "sim_time": round(fed.sim.now, 6),
        "cross_ring_requests": summary["cross_ring_requests"],
        "fetches_served": summary["fetches_served"],
        "migrations_started": summary["migrations_started"],
        "fragments_migrated": summary["fragments_migrated"],
    }
    return verdict, extras


def _gateway_chaos_once(
    seed: int, quick: bool, target: SloTarget, serve_handoff: bool
) -> Tuple[Dict, Dict]:
    """One gateway-crash run; the scenario runs this twice (handoff
    on/off) and reports both tails."""
    dataset = (
        UniformDataset(n_bats=96, min_size=MB, max_size=2 * MB, seed=seed)
        if quick
        else UniformDataset(n_bats=300, min_size=MB, max_size=4 * MB, seed=seed)
    )
    fed = _block_federation(
        dataset, seed,
        n_rings=3, nodes_per_ring=3,
        resilience=True,
        serve_handoff=serve_handoff,
        fetch_timeout=2.5,
        placement_interval=60.0,  # topology and placement stay fixed
    )
    slo = _attach_federation(fed)
    # arrivals only on rings 0 and 2, interest drifting through ring
    # 1's block: a steady stream of first-touch fetches keeps serves in
    # flight on ring 1's (doomed) gateway for the whole run
    npr = fed.config.nodes_per_ring
    edge_nodes = list(range(npr)) + list(range(2 * npr, 3 * npr))
    n = dataset.n_bats
    duration = 4.0 if quick else 10.0
    workload = LocalityShiftWorkload(
        dataset,
        n_nodes=fed.config.total_nodes,
        nodes=edge_nodes,
        rate=60.0 if quick else 150.0,
        center_start=n / 3 + 4,
        center_end=2 * n / 3 - 4,
        std=n / 24,
        shift_duration=duration,
        duration=duration,
        min_proc_time=0.02,
        max_proc_time=0.05,
        seed=seed,
        tag="chaos",
    )
    submitted = workload.submit_to(fed)

    # the fault: ring 1's gateway dies *mid-serve*.  A fixed crash time
    # would mostly miss the few-millisecond serve windows, so a sim-time
    # watchdog (deterministic: it polls the simulation clock, nothing
    # wall-clock) fires the crash at the first instant after t=1.0 at
    # which the gateway actually has a fetch serve in flight.
    crashed_at = [0.0]

    def watch() -> None:
        ring_id = 1
        node = fed.router.gateway(ring_id)
        ring = fed.rings[ring_id]
        if not ring.ring.is_alive(node) or fed.sim.now > duration:
            return
        if fed.router.pending_serve_count(ring_id, node) > 0:
            ring.crash_node(node)
            crashed_at[0] = fed.sim.now
            return
        fed.sim.post(0.005, watch)

    fed.sim.post(1.0, watch)
    completed = fed.run_until_done(max_time=MAX_TIME)
    summary = fed.summary()
    verdict = slo.verdict("gateway-chaos", seed, target)
    extras = {
        "submitted": submitted,
        "completed_in_time": completed,
        "sim_time": round(fed.sim.now, 6),
        "serve_handoff": serve_handoff,
        "crashed_at": round(crashed_at[0], 6),
        "serves_handed_off": summary["serves_handed_off"],
        "gateway_failures": summary["gateway_failures"],
        "gateway_elections": summary["gateway_elections"],
    }
    return verdict, extras


def _run_gateway_chaos(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    verdict_on, extras_on = _gateway_chaos_once(seed, quick, target, True)
    verdict_off, extras_off = _gateway_chaos_once(seed, quick, target, False)
    extras = dict(extras_on)
    extras["p999_handoff_on"] = verdict_on["latency"]["p999"]
    extras["p999_handoff_off"] = verdict_off["latency"]["p999"]
    extras["handoff_off_verdict"] = verdict_off
    return verdict_on, extras


# per-engine-class objectives for the mixed-engine scenario: each QPU
# class is graded on the number its tenants actually care about
MIXED_ENGINE_TARGETS: Dict[str, EngineSloTarget] = {
    "kv": EngineSloTarget(p99=0.3),
    "mal": EngineSloTarget(p99=4.0),
    "stream": EngineSloTarget(min_throughput=0.5),
}


def _run_mixed_engine(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    if quick:
        workload = MixedEngineWorkload(
            n_rows=6000, rows_per_partition=500,
            kv_rate=30.0, mal_rate=5.0, stream_rate=1.0,
            duration=5.0, seed=seed,
        )
    else:
        workload = MixedEngineWorkload(
            n_rows=24000, rows_per_partition=1000,
            kv_rate=60.0, mal_rate=8.0, stream_rate=2.0,
            duration=12.0, seed=seed,
        )
    rdb = RingDatabase(
        DataCyclotronConfig(
            n_nodes=4,
            seed=seed,
            bandwidth=40 * MB,
            bat_queue_capacity=15 * MB,
            disk_latency=1e-4,
            load_all_interval=0.02,
        ),
        lifecycle_events=True,  # tags queries with their engine class
    )
    slo = SloCollector().attach(rdb.dc.bus)
    submitted = workload.submit_to(rdb)
    completed = rdb.run_until_done(max_time=MAX_TIME)
    verdict = slo.verdict("mixed-engine", seed, target)
    verdict["engine_classes"] = slo.engine_verdicts(
        MIXED_ENGINE_TARGETS, duration=rdb.dc.sim.now
    )
    metrics = rdb.metrics
    extras = {
        "submitted": submitted,
        "submitted_by_engine": dict(workload.counts),
        "completed_in_time": completed,
        "sim_time": round(rdb.dc.sim.now, 6),
        "queries_by_engine": dict(metrics.queries_by_engine),
        "kv_probes": metrics.kv_probes,
        "kv_misses": metrics.kv_misses,
        "stream_bats_consumed": metrics.stream_bats_consumed,
        "stream_rows_consumed": metrics.stream_rows_consumed,
    }
    return verdict, extras


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "diurnal",
            "day/night arrival-rate cycle over a Gaussian hot set",
            SloTarget(p50=1.0, p99=12.0, p999=18.0),
            _run_diurnal,
        ),
        ScenarioSpec(
            "flash-crowd",
            "step burst far above ring capacity on a small hot set",
            SloTarget(p50=6.0, p99=20.0, p999=36.0),
            _run_flash_crowd,
        ),
        ScenarioSpec(
            "multi-tenant",
            "Zipf tenant mix with per-tenant SLOs and fairness",
            SloTarget(p50=2.0, p99=18.0, p999=24.0),
            _run_multi_tenant,
        ),
        ScenarioSpec(
            "locality-shift",
            "drifting interest over block-placed federation data",
            SloTarget(p50=1.0, p99=3.0, p999=4.0),
            _run_locality_shift,
        ),
        ScenarioSpec(
            "gateway-chaos",
            "gateway crash mid-workload, serve handoff on vs off",
            SloTarget(p50=1.0, p99=2.5, p999=4.5),
            _run_gateway_chaos,
        ),
        ScenarioSpec(
            "mixed-engine",
            "KV probes, MAL scans and streaming folds on one ring",
            SloTarget(p50=0.5, p99=3.0, p999=5.0),
            _run_mixed_engine,
        ),
    )
}


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def run_scenario(name: str, seed: int = 0, quick: bool = True) -> Dict:
    """Run one named scenario; raises ``KeyError`` on unknown names."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; pick from {', '.join(SCENARIOS)}"
        )
    return SCENARIOS[name].run(seed, quick)


def run_suite(
    names: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = (0,),
    quick: bool = True,
) -> Dict:
    """Run scenarios x seeds; returns the ``BENCH_slo.json`` payload."""
    names = list(names) if names is not None else scenario_names()
    runs = [run_scenario(name, seed, quick) for name in names for seed in seeds]
    return {
        "quick": quick,
        "seeds": list(seeds),
        "scenarios": {
            name: [r for r in runs if r["name"] == name] for name in names
        },
    }
