"""The named scenario suite behind ``repro scenarios`` (docs/workloads.md).

Each scenario builds a deployment (classic ring or federation), attaches
an :class:`~repro.metrics.slo.SloCollector` to the query lifecycle,
drives one of the :mod:`repro.workloads.scenarios` generators through
it, and returns an SLO verdict plus scenario-specific extras:

* ``diurnal`` -- day/night load swing on a classic ring,
* ``flash-crowd`` -- a step burst far above ring capacity,
* ``multi-tenant`` -- Zipf tenants with per-tenant SLOs and fairness,
* ``locality-shift`` -- drifting interest over block-placed federation
  data, triggering organic cross-ring fetches and migrations,
* ``gateway-chaos`` -- a gateway crash mid-workload, run twice (serve
  handoff on and off) so the p999 tail the handoff removes is measured
  in the same report,
* ``mixed-engine`` -- KV probes, MAL scans and streaming folds sharing
  one ring economy, graded per engine class (docs/qpu.md): p99 for the
  point lookups, sustained throughput for the streaming aggregates,
* ``frontdoor`` -- a 3x-capacity open-loop burst priced by the
  statistics estimator at the serving tier; the statistics-driven
  valve is gated against a blind byte-valve twin (docs/frontdoor.md),
* ``mixed-engine-overload`` -- the same burst through all three engine
  classes at once, graded with per-engine-class SLO verdicts.

Everything is deterministic per seed: ``run_scenario(name, seed)``
returns a bit-identical result dict on every call, which is what the
CI ``scenario-smoke`` job and ``benchmarks/bench_slo.py`` rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import MB, DataCyclotronConfig
from repro.core.query import QuerySpec
from repro.core.ring import DataCyclotron
from repro.dbms.executor import RingDatabase
from repro.metrics.slo import (
    PERCENTILES,
    EngineSloTarget,
    SloCollector,
    SloTarget,
    latency_percentiles,
    validate_verdict,
)
from repro.multiring.config import MultiRingConfig
from repro.multiring.federation import RingFederation
from repro.resilience.overload import OverloadController, OverloadPolicy
from repro.sim.rng import RngRegistry
from repro.workloads.base import UniformDataset, Workload, populate_ring
from repro.workloads.closedloop import ClosedLoopWorkload
from repro.workloads.frontdoor import FrontDoorWorkload
from repro.workloads.mixed import MixedEngineWorkload
from repro.workloads.scenarios import (
    ColdBurstWorkload,
    DiurnalWorkload,
    FlashCrowdWorkload,
    LocalityShiftWorkload,
    MultiTenantWorkload,
)
__all__ = [
    "MIXED_ENGINE_TARGETS",
    "SCENARIOS",
    "ScenarioSpec",
    "run_scenario",
    "run_suite",
    "scenario_names",
]

MAX_TIME = 600.0


@dataclass(frozen=True)
class ScenarioSpec:
    """One named scenario: a runner plus its declared SLO target."""

    name: str
    description: str
    target: SloTarget
    runner: Callable[[int, bool, SloTarget], Tuple[Dict, Dict]]

    def run(self, seed: int, quick: bool) -> Dict:
        verdict, extras = self.runner(seed, quick, self.target)
        validate_verdict(verdict)
        return {
            "name": self.name,
            "seed": seed,
            "quick": quick,
            "verdict": verdict,
            "extras": extras,
        }


# ----------------------------------------------------------------------
# shared deployment builders
# ----------------------------------------------------------------------
def _classic_ring(dataset: UniformDataset, seed: int) -> DataCyclotron:
    """A 4-node classic ring with the quick-benchmark speed knobs."""
    dc = DataCyclotron(DataCyclotronConfig(
        n_nodes=4,
        seed=seed,
        bandwidth=40 * MB,
        bat_queue_capacity=15 * MB,
        disk_latency=1e-4,
        load_all_interval=0.02,
    ))
    populate_ring(dc, dataset)
    return dc


def _run_classic(
    workload: Workload,
    dataset: UniformDataset,
    seed: int,
    target: SloTarget,
    scenario: str,
) -> Tuple[Dict, Dict]:
    dc = _classic_ring(dataset, seed)
    slo = SloCollector().attach(dc.bus)
    submitted = workload.submit_to(dc)
    completed = dc.run_until_done(max_time=MAX_TIME)
    verdict = slo.verdict(scenario, seed, target)
    extras = {
        "submitted": submitted,
        "completed_in_time": completed,
        "sim_time": round(dc.sim.now, 6),
    }
    return verdict, extras


def _block_federation(
    dataset: UniformDataset,
    seed: int,
    n_rings: int,
    nodes_per_ring: int,
    resilience: bool = False,
    splitmerge_interval: float = 0.0,  # fixed topology: measure the workload
    **multiring_kwargs,
) -> RingFederation:
    """A federation with *contiguous block* data placement: BAT ids map
    to rings in order, so a drifting interest centre walks from one
    ring's data into the next (the locality-shift premise)."""
    base = DataCyclotronConfig(
        n_nodes=nodes_per_ring,  # replaced per ring by MultiRingConfig
        seed=seed,
        bandwidth=40 * MB,
        bat_queue_capacity=15 * MB,
        disk_latency=1e-4,
        load_all_interval=0.02,
        resend_timeout=0.5,
        resend_backoff_base=2.0,
        max_resends=6,
        resilience=resilience,
        replication_k=2 if resilience else 1,
    )
    fed = RingFederation(MultiRingConfig(
        base=base,
        n_rings=n_rings,
        nodes_per_ring=nodes_per_ring,
        gateways_per_ring=1,
        splitmerge_interval=splitmerge_interval,
        **multiring_kwargs,
    ))
    n = dataset.n_bats
    for bat_id, size in sorted(dataset.sizes.items()):
        fed.add_bat(bat_id, size, ring=bat_id * n_rings // n)
    return fed


def _attach_federation(fed: RingFederation) -> SloCollector:
    slo = SloCollector()
    for ring in fed.rings:
        slo.attach(ring.bus)
    return slo


# ----------------------------------------------------------------------
# the scenarios
# ----------------------------------------------------------------------
def _dataset(seed: int, quick: bool) -> UniformDataset:
    if quick:
        return UniformDataset(n_bats=120, min_size=MB, max_size=2 * MB, seed=seed)
    return UniformDataset(n_bats=1000, min_size=MB, max_size=10 * MB, seed=seed)


def _run_diurnal(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    dataset = _dataset(seed, quick)
    workload = DiurnalWorkload(
        dataset,
        n_nodes=4,
        base_rate=40.0 if quick else 80.0,
        amplitude=0.8,
        period=4.0 if quick else 16.0,
        duration=8.0 if quick else 32.0,
        seed=seed,
    )
    verdict, extras = _run_classic(workload, dataset, seed, target, "diurnal")
    extras["peak_rate"] = workload.rate_at(workload.period / 2)
    extras["trough_rate"] = workload.rate_at(0.0)
    return verdict, extras


def _run_flash_crowd(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    dataset = _dataset(seed, quick)
    workload = FlashCrowdWorkload(
        dataset,
        n_nodes=4,
        base_rate=25.0 if quick else 60.0,
        burst_factor=8.0,
        burst_start=3.0,
        burst_duration=1.5 if quick else 4.0,
        hot_set_size=8,
        duration=8.0 if quick else 20.0,
        seed=seed,
    )
    verdict, extras = _run_classic(workload, dataset, seed, target, "flash-crowd")
    extras["burst_rate"] = workload.rate_at(workload.burst_start)
    return verdict, extras


def _run_multi_tenant(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    dataset = _dataset(seed, quick)
    workload = MultiTenantWorkload(
        dataset,
        n_nodes=4,
        n_tenants=4,
        total_rate=50.0 if quick else 120.0,
        duration=7.0 if quick else 20.0,
        seed=seed,
    )
    verdict, extras = _run_classic(workload, dataset, seed, target, "multi-tenant")
    extras["tenant_shares"] = {
        f"tenant{i}": round(workload.tenant_share(i), 6)
        for i in range(workload.n_tenants)
    }
    return verdict, extras


def _run_locality_shift(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    dataset = _dataset(seed, quick)
    fed = _block_federation(
        dataset, seed,
        n_rings=3, nodes_per_ring=3,
        placement_interval=0.25,
        migration_patience=2,
        ship_threshold=0.0,  # fetch, don't ship: migrations must carry the load
    )
    slo = _attach_federation(fed)
    # every query arrives at ring 0 (the clients live in one region);
    # the interest centre drifts out of ring 0's block into rings 1 and
    # 2, so the foreign-fetch pressure re-homes the hot set to ring 0
    workload = LocalityShiftWorkload(
        dataset,
        n_nodes=fed.config.total_nodes,
        nodes=list(range(fed.config.nodes_per_ring)),
        rate=40.0 if quick else 100.0,
        duration=8.0 if quick else 24.0,
        seed=seed,
    )
    submitted = workload.submit_to(fed)
    completed = fed.run_until_done(max_time=MAX_TIME)
    summary = fed.summary()
    verdict = slo.verdict("locality-shift", seed, target)
    extras = {
        "submitted": submitted,
        "completed_in_time": completed,
        "sim_time": round(fed.sim.now, 6),
        "cross_ring_requests": summary["cross_ring_requests"],
        "fetches_served": summary["fetches_served"],
        "migrations_started": summary["migrations_started"],
        "fragments_migrated": summary["fragments_migrated"],
    }
    return verdict, extras


def _gateway_chaos_once(
    seed: int, quick: bool, target: SloTarget, serve_handoff: bool
) -> Tuple[Dict, Dict]:
    """One gateway-crash run; the scenario runs this twice (handoff
    on/off) and reports both tails."""
    dataset = (
        UniformDataset(n_bats=96, min_size=MB, max_size=2 * MB, seed=seed)
        if quick
        else UniformDataset(n_bats=300, min_size=MB, max_size=4 * MB, seed=seed)
    )
    fed = _block_federation(
        dataset, seed,
        n_rings=3, nodes_per_ring=3,
        resilience=True,
        serve_handoff=serve_handoff,
        fetch_timeout=2.5,
        placement_interval=60.0,  # topology and placement stay fixed
    )
    slo = _attach_federation(fed)
    # arrivals only on rings 0 and 2, interest drifting through ring
    # 1's block: a steady stream of first-touch fetches keeps serves in
    # flight on ring 1's (doomed) gateway for the whole run
    npr = fed.config.nodes_per_ring
    edge_nodes = list(range(npr)) + list(range(2 * npr, 3 * npr))
    n = dataset.n_bats
    duration = 4.0 if quick else 10.0
    workload = LocalityShiftWorkload(
        dataset,
        n_nodes=fed.config.total_nodes,
        nodes=edge_nodes,
        rate=60.0 if quick else 150.0,
        center_start=n / 3 + 4,
        center_end=2 * n / 3 - 4,
        std=n / 24,
        shift_duration=duration,
        duration=duration,
        min_proc_time=0.02,
        max_proc_time=0.05,
        seed=seed,
        tag="chaos",
    )
    submitted = workload.submit_to(fed)

    # the fault: ring 1's gateway dies *mid-serve*.  A fixed crash time
    # would mostly miss the few-millisecond serve windows, so a sim-time
    # watchdog (deterministic: it polls the simulation clock, nothing
    # wall-clock) fires the crash at the first instant after t=1.0 at
    # which the gateway actually has a fetch serve in flight.
    crashed_at = [0.0]

    def watch() -> None:
        ring_id = 1
        node = fed.router.gateway(ring_id)
        ring = fed.rings[ring_id]
        if not ring.ring.is_alive(node) or fed.sim.now > duration:
            return
        if fed.router.pending_serve_count(ring_id, node) > 0:
            ring.crash_node(node)
            crashed_at[0] = fed.sim.now
            return
        fed.sim.post(0.005, watch)

    fed.sim.post(1.0, watch)
    completed = fed.run_until_done(max_time=MAX_TIME)
    summary = fed.summary()
    verdict = slo.verdict("gateway-chaos", seed, target)
    extras = {
        "submitted": submitted,
        "completed_in_time": completed,
        "sim_time": round(fed.sim.now, 6),
        "serve_handoff": serve_handoff,
        "crashed_at": round(crashed_at[0], 6),
        "serves_handed_off": summary["serves_handed_off"],
        "gateway_failures": summary["gateway_failures"],
        "gateway_elections": summary["gateway_elections"],
    }
    return verdict, extras


def _run_gateway_chaos(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    verdict_on, extras_on = _gateway_chaos_once(seed, quick, target, True)
    verdict_off, extras_off = _gateway_chaos_once(seed, quick, target, False)
    extras = dict(extras_on)
    extras["p999_handoff_on"] = verdict_on["latency"]["p999"]
    extras["p999_handoff_off"] = verdict_off["latency"]["p999"]
    extras["handoff_off_verdict"] = verdict_off
    return verdict_on, extras


# ----------------------------------------------------------------------
# closed-loop overload control scenarios (docs/overload.md)
# ----------------------------------------------------------------------
def _tiered_specs(workload: Workload, seed: int) -> List[QuerySpec]:
    """Assign priority tiers 0/1/2 to an open-loop stream, deterministically.

    45/45/10: most of the flood is best-effort (tiers 0 and 1), a thin
    top tier models the paying traffic a brownout must protect.  The
    tier doubles as the tenant tag (``tier0``/``tier1``/``tier2``) so
    per-tier stats need no extra machinery.
    """
    rng = RngRegistry(seed).stream("tiers")
    out: List[QuerySpec] = []
    for spec in workload.queries():
        u = rng.random()
        tier = 0 if u < 0.45 else (1 if u < 0.9 else 2)
        out.append(replace(spec, tier=tier, tag=f"tier{tier}"))
    return out


def _goodput(slo: SloCollector, deadline: float, duration: float) -> float:
    """Deadline-respecting completions per second of workload time."""
    good = sum(1 for x in slo.latencies() if x <= deadline)
    return round(good / duration, 6)


def _controller_extras(ctrl: OverloadController) -> Dict:
    stats = ctrl.stats()
    shed_fraction = {}
    for tier, offered in sorted(stats["offered_by_tier"].items()):
        shed = stats["shed_by_tier"].get(tier, 0)
        shed_fraction[tier] = round(shed / offered, 6) if offered else 0.0
    return {
        "offered_by_tier": stats["offered_by_tier"],
        "shed_by_tier": stats["shed_by_tier"],
        "shed_fraction_by_tier": shed_fraction,
        "max_shed_level": stats["max_level"],
        "level_changes": stats["level_changes"],
    }


# Deadline the overload goodput metric counts completions against:
# *useful* work is a success the caller was still waiting for, not a
# completion that limped home after the client gave up.
OVERLOAD_DEADLINE = 2.0


def _overload_ring(
    dataset: UniformDataset, seed: int, controlled: bool
) -> DataCyclotron:
    """A resilient 4-node ring with a tight resend envelope.

    Small BAT queues plus bounded resends are what make sustained
    overload *lossy* here: once the cold-burst demand overflows the
    queues, unserved requests exhaust their resends and queries fail
    with ``DATA_UNAVAILABLE``, which the retrier then amplifies into
    even more traffic.  The controlled run adds the retry-budget token
    bucket; everything else is identical between the two runs.
    """
    dc = DataCyclotron(DataCyclotronConfig(
        n_nodes=4,
        seed=seed,
        bandwidth=40 * MB,
        bat_queue_capacity=8 * MB,
        disk_latency=1e-4,
        load_all_interval=0.02,
        max_resends=3,
        resend_timeout=0.5,
        resend_backoff_base=2.0,
        resilience=True,
        retry_max_attempts=4,
        retry_backoff_initial=0.2,
        retry_backoff_base=2.0,
        retry_backoff_cap=1.0,
        retry_jitter=0.25,
        retry_deadline=8.0,
        retry_budget_capacity=40.0 if controlled else None,
        retry_budget_refill=8.0 if controlled else 0.0,
    ))
    populate_ring(dc, dataset)
    return dc


def _retrier_verdict(retrier, scenario: str, seed: int, target: SloTarget) -> Dict:
    """An SLO verdict over the retrier's *logical* queries.

    Under the resilience manager each logical query runs as several
    attempts with fresh ids, so the event-stream collector would count
    every attempt separately; the retry states are the source of truth
    here.  Shed queries count as failed, the ``SloCollector``
    convention."""
    states = list(retrier.states.values())
    samples = retrier.latencies()
    percentiles = {
        name: round(value, 6)
        for name, value in latency_percentiles(samples).items()
    }
    total = len(states)
    failed = total - len(samples)
    failure_rate = failed / total if total else 0.0
    passed = {
        name: percentiles[name] <= getattr(target, name)
        for name, _q in PERCENTILES
    }
    passed["failure_rate"] = failure_rate <= target.max_failure_rate
    return {
        "scenario": scenario,
        "seed": seed,
        "queries": total,
        "succeeded": len(samples),
        "failed": failed,
        "shed": sum(1 for s in states if s.shed),
        "failure_rate": round(failure_rate, 6),
        "latency": percentiles,
        "target": target.as_dict(),
        "passed": passed,
        "ok": all(passed.values()),
    }


def _tier_outcomes(retrier, deadline: float, duration: float) -> Dict[int, Dict]:
    """Per-tier offered/shed/failed counts and deadline goodput."""
    per: Dict[int, Dict] = {}
    for state in retrier.states.values():
        d = per.setdefault(state.spec.tier, {
            "offered": 0, "succeeded": 0, "failed": 0, "shed": 0, "good": 0,
        })
        d["offered"] += 1
        if state.shed:
            d["shed"] += 1
        elif state.succeeded:
            d["succeeded"] += 1
            if state.latency is not None and state.latency <= deadline:
                d["good"] += 1
        elif state.done:
            d["failed"] += 1
    out: Dict[int, Dict] = {}
    for tier in sorted(per):
        d = per[tier]
        d["goodput"] = round(d["good"] / duration, 6)
        d["shed_fraction"] = round(d["shed"] / d["offered"], 6)
        out[tier] = d
    return out


def _overload_once(
    seed: int, quick: bool, target: SloTarget, controlled: bool
) -> Tuple[Dict, Dict, Optional[OverloadController]]:
    """One cold-burst flood through the resilience manager, with or
    without the closed-loop controller and retry budget."""
    dataset = UniformDataset(
        n_bats=120 if quick else 240, min_size=MB, max_size=2 * MB, seed=seed
    )
    dc = _overload_ring(dataset, seed, controlled)
    mgr = dc.resilience
    duration = 8.0 if quick else 14.0
    flash = ColdBurstWorkload(
        dataset,
        n_nodes=4,
        base_rate=30.0,
        burst_factor=10.0,
        burst_start=1.0,
        burst_duration=4.0 if quick else 8.0,
        hot_set_size=8,
        duration=duration,
        seed=seed,
    )
    specs = _tiered_specs(flash, seed)
    closed = ClosedLoopWorkload(
        dataset,
        n_nodes=4,
        n_clients=4,
        duration=duration,
        think_min=0.05,
        think_max=0.20,
        max_bats=2,
        seed=seed,
        tag="tier2",
        tier=2,
    )
    ctrl: Optional[OverloadController] = None
    if controlled:
        ctrl = OverloadController(dc, OverloadPolicy(
            target_p99=2.0,
            window=2.0,
            tick_interval=0.25,
            n_tiers=3,
            min_samples=8,
            recover_fraction=0.7,
            recover_patience=4,
        ))
        ctrl.start()
        mgr.overload = ctrl
    # admission decisions belong to arrival time, not enqueue time
    for spec in specs:
        dc.sim.post(spec.arrival, mgr.submit, spec)
    closed.submit_to(dc, gate=ctrl)
    dc.run(until=duration)
    while dc.sim.now < MAX_TIME and not (
        mgr.retrier.all_done and dc.completed_queries >= dc._submitted
    ):
        dc.sim.run(until=dc.sim.now + 0.5)
    completed = mgr.retrier.all_done and dc.completed_queries >= dc._submitted
    # grace ticks: the hysteretic valve should step back to level 0
    dc.sim.run(until=dc.sim.now + 4.0)
    verdict = _retrier_verdict(mgr.retrier, "overload", seed, target)
    counts = mgr.retrier.counts()
    tiers = _tier_outcomes(mgr.retrier, OVERLOAD_DEADLINE, duration)
    top_tier = max(tiers)
    closed_good = sum(1 for x in closed.latencies if x <= OVERLOAD_DEADLINE)
    run_stats = {
        "submitted": len(specs) + closed.issued,
        "completed_in_time": completed,
        "sim_time": round(dc.sim.now, 6),
        "deadline": OVERLOAD_DEADLINE,
        "p999": verdict["latency"]["p999"],
        "failed": counts["failed"],
        "attempts": counts["attempts"],
        "budget_exhausted": mgr.retrier.budget_exhausted,
        # protected goodput: top-tier open-loop queries plus the
        # closed-loop client population, both graded on the deadline
        "goodput": round(
            (tiers[top_tier]["good"] + closed_good) / duration, 6
        ),
        "goodput_all": round(
            (sum(d["good"] for d in tiers.values()) + closed_good) / duration,
            6,
        ),
        "tiers": tiers,
        "closed_issued": closed.issued,
        "closed_shed": closed.shed,
        "closed_failed": closed.failed,
        "closed_good": closed_good,
        "final_level": ctrl.shed_level if ctrl is not None else 0,
    }
    return verdict, run_stats, ctrl


def _run_overload(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    verdict_on, stats_on, ctrl = _overload_once(seed, quick, target, True)
    verdict_off, stats_off, _ = _overload_once(seed, quick, target, False)
    extras = {
        "submitted": stats_on["submitted"],
        "completed_in_time": stats_on["completed_in_time"],
        "sim_time": stats_on["sim_time"],
        "deadline": stats_on["deadline"],
        "p999_controller_on": stats_on["p999"],
        "p999_controller_off": stats_off["p999"],
        # goodput = deadline-respecting completions/s of the protected
        # (top) tier -- the traffic a brownout exists to keep serving
        "goodput_on": stats_on["goodput"],
        "goodput_off": stats_off["goodput"],
        "goodput_all_on": stats_on["goodput_all"],
        "goodput_all_off": stats_off["goodput_all"],
        "failed_on": stats_on["failed"],
        "failed_off": stats_off["failed"],
        "attempts_on": stats_on["attempts"],
        "attempts_off": stats_off["attempts"],
        "budget_exhausted_on": stats_on["budget_exhausted"],
        "tiers_on": stats_on["tiers"],
        "tiers_off": stats_off["tiers"],
        "closed_issued_on": stats_on["closed_issued"],
        "closed_shed_on": stats_on["closed_shed"],
        "closed_good_on": stats_on["closed_good"],
        "closed_failed_on": stats_on["closed_failed"],
        "closed_issued_off": stats_off["closed_issued"],
        "closed_good_off": stats_off["closed_good"],
        "closed_failed_off": stats_off["closed_failed"],
        "final_level_on": stats_on["final_level"],
        "controller_off_verdict": verdict_off,
    }
    extras.update(_controller_extras(ctrl))
    return verdict_on, extras


def _split_under_load_once(
    seed: int, quick: bool, target: SloTarget, controlled: bool
) -> Tuple[Dict, Dict, Optional[OverloadController]]:
    """A flash crowd pinned on ring 0 of a two-ring federation with one
    standby ring; the pulsating split/merge controller is live, so the
    burst triggers a ring split mid-overload."""
    dataset = UniformDataset(
        n_bats=120 if quick else 240, min_size=MB, max_size=2 * MB, seed=seed
    )
    fed = _block_federation(
        dataset, seed,
        n_rings=2, nodes_per_ring=3,
        max_rings=3,
        splitmerge_interval=0.25,
        splitmerge_patience=2,
        split_high_watermark=0.80,
        placement_interval=0.25,
        migration_patience=2,
    )
    slo = _attach_federation(fed)
    slo.attach(fed.bus)  # the admission gate publishes QueryShed here
    duration = 8.0 if quick else 14.0
    npr = fed.config.nodes_per_ring
    n = dataset.n_bats
    flash = ColdBurstWorkload(
        dataset,
        n_nodes=fed.config.total_nodes,
        nodes=list(range(npr)),  # the crowd arrives at ring 0
        base_rate=25.0,
        burst_factor=10.0,
        burst_start=1.0,
        burst_duration=4.0 if quick else 8.0,
        hot_set_size=8,
        duration=duration,
        seed=seed,
    )
    # the baseline hot set sits in the middle of ring 0's contiguous
    # block (fast and stable); the burst floods *cold* data from every
    # ring's block, so relief needs both shedding and a ring split
    flash.hot_low = n // 4
    specs = _tiered_specs(flash, seed)
    closed = ClosedLoopWorkload(
        dataset,
        n_nodes=fed.config.total_nodes,
        n_clients=6 if quick else 12,
        duration=duration,
        think_min=0.05,
        think_max=0.20,
        nodes=list(range(npr)),
        seed=seed,
        tag="tier2",
        tier=2,
    )
    ctrl: Optional[OverloadController] = None
    if controlled:
        ctrl = OverloadController(
            fed,
            OverloadPolicy(
                target_p99=3.0,
                window=2.0,
                tick_interval=0.25,
                n_tiers=3,
                min_samples=8,
                recover_fraction=0.7,
                recover_patience=4,
                topology_guard_tiers=1,
                topology_guard_window=0.5,
                split_nudge_ticks=6,
            ),
            size_of=fed.catalog.size,
        )
        ctrl.start()
        for spec in specs:
            ctrl.submit(spec)
        closed.submit_to(fed, gate=ctrl)
    else:
        for spec in specs:
            fed.submit(spec)
        closed.submit_to(fed)
    fed.run(until=duration)
    completed = fed.run_until_done(max_time=MAX_TIME)
    # grace ticks: the hysteretic valve should step back to level 0
    fed.sim.run(until=fed.sim.now + 4.0)
    summary = fed.summary()
    verdict = slo.verdict("split-under-load", seed, target)
    # tier2 tags both the protected open-loop slice and the closed-loop
    # clients, so one tag filter covers the whole protected population
    protected = slo.latencies("tier2")
    run_stats = {
        "submitted": len(specs) + closed.issued,
        "completed_in_time": completed,
        "sim_time": round(fed.sim.now, 6),
        "p999": verdict["latency"]["p999"],
        "goodput": round(
            sum(1 for x in protected if x <= OVERLOAD_DEADLINE) / duration, 6
        ),
        "goodput_all": _goodput(slo, OVERLOAD_DEADLINE, duration),
        "deadline": OVERLOAD_DEADLINE,
        "ring_splits": summary["ring_splits"],
        "migrations_started": summary["migrations_started"],
        "fragments_migrated": summary["fragments_migrated"],
        "final_level": ctrl.shed_level if ctrl is not None else 0,
    }
    return verdict, run_stats, ctrl


def _run_split_under_load(
    seed: int, quick: bool, target: SloTarget
) -> Tuple[Dict, Dict]:
    verdict_on, stats_on, ctrl = _split_under_load_once(seed, quick, target, True)
    verdict_off, stats_off, _ = _split_under_load_once(seed, quick, target, False)
    extras = {
        "submitted": stats_on["submitted"],
        "completed_in_time": stats_on["completed_in_time"],
        "sim_time": stats_on["sim_time"],
        "deadline": stats_on["deadline"],
        "ring_splits_on": stats_on["ring_splits"],
        "ring_splits_off": stats_off["ring_splits"],
        "migrations_started": stats_on["migrations_started"],
        "fragments_migrated": stats_on["fragments_migrated"],
        "p999_controller_on": stats_on["p999"],
        "p999_controller_off": stats_off["p999"],
        "goodput_on": stats_on["goodput"],
        "goodput_off": stats_off["goodput"],
        "goodput_all_on": stats_on["goodput_all"],
        "goodput_all_off": stats_off["goodput_all"],
        "final_level_on": stats_on["final_level"],
        "controller_off_verdict": verdict_off,
    }
    extras.update(_controller_extras(ctrl))
    return verdict_on, extras


# per-engine-class objectives for the mixed-engine scenario: each QPU
# class is graded on the number its tenants actually care about
MIXED_ENGINE_TARGETS: Dict[str, EngineSloTarget] = {
    "kv": EngineSloTarget(p99=0.3),
    "mal": EngineSloTarget(p99=4.0),
    "stream": EngineSloTarget(min_throughput=0.5),
}


def _run_mixed_engine(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    if quick:
        workload = MixedEngineWorkload(
            n_rows=6000, rows_per_partition=500,
            kv_rate=30.0, mal_rate=5.0, stream_rate=1.0,
            duration=5.0, seed=seed,
        )
    else:
        workload = MixedEngineWorkload(
            n_rows=24000, rows_per_partition=1000,
            kv_rate=60.0, mal_rate=8.0, stream_rate=2.0,
            duration=12.0, seed=seed,
        )
    rdb = RingDatabase(
        DataCyclotronConfig(
            n_nodes=4,
            seed=seed,
            bandwidth=40 * MB,
            bat_queue_capacity=15 * MB,
            disk_latency=1e-4,
            load_all_interval=0.02,
        ),
        lifecycle_events=True,  # tags queries with their engine class
    )
    slo = SloCollector().attach(rdb.dc.bus)
    submitted = workload.submit_to(rdb)
    completed = rdb.run_until_done(max_time=MAX_TIME)
    verdict = slo.verdict("mixed-engine", seed, target)
    verdict["engine_classes"] = slo.engine_verdicts(
        MIXED_ENGINE_TARGETS, duration=rdb.dc.sim.now
    )
    metrics = rdb.metrics
    extras = {
        "submitted": submitted,
        "submitted_by_engine": dict(workload.counts),
        "completed_in_time": completed,
        "sim_time": round(rdb.dc.sim.now, 6),
        "queries_by_engine": dict(metrics.queries_by_engine),
        "kv_probes": metrics.kv_probes,
        "kv_misses": metrics.kv_misses,
        "stream_bats_consumed": metrics.stream_bats_consumed,
        "stream_rows_consumed": metrics.stream_rows_consumed,
    }
    return verdict, extras


# ----------------------------------------------------------------------
# front-door serving tier scenarios (docs/frontdoor.md)
# ----------------------------------------------------------------------
def _frontdoor_workload(seed: int, quick: bool, **overrides) -> FrontDoorWorkload:
    """The sized front-door mix; capacity math lives in the workload.

    Quick: 6000-row, 6-column table -> 48 KB columns, so a burst
    ``SELECT *`` binds 288 KB while a probe costs one 4 KB partition.
    With a 3 MB/s ring the offered footprint-byte rate is ~0.58x
    capacity outside the burst window and ~3.3x inside it (the >= 3x
    open-loop overload the acceptance gate requires;
    ``capacity_ratio`` reports the exact figure in the extras).
    """
    if quick:
        params = dict(
            n_rows=6000, rows_per_partition=500, kv_rate=40.0,
            mal_rate=15.0, stream_rate=3.0, burst_rate=30.0,
            burst_start=1.0, burst_end=5.0, duration=6.0, seed=seed,
        )
    else:
        params = dict(
            n_rows=12000, rows_per_partition=500, kv_rate=40.0,
            mal_rate=15.0, stream_rate=3.0, burst_rate=30.0,
            burst_start=2.0, burst_end=10.0, duration=12.0, seed=seed,
        )
    params.update(overrides)
    return FrontDoorWorkload(**params)


def _frontdoor_ring(seed: int, quick: bool) -> RingDatabase:
    """A deliberately thin ring: the front door, not the pipe, must
    absorb the burst.  ``fast_forward`` stays off so transfer times are
    the real latency signal the deadlines grade."""
    return RingDatabase(
        DataCyclotronConfig(
            n_nodes=4,
            seed=seed,
            bandwidth=(3 if quick else 6) * MB,
            fast_forward=False,
        ),
        lifecycle_events=True,
    )


def _frontdoor_budget(quick: bool) -> int:
    return int((1.5 if quick else 3.0) * MB)


# predicted-bytes tier boundaries: probes (<=16 KB) ride the protected
# top tier, single-column scans and folds the middle, wide scans tier 0
FRONTDOOR_TIERS = (16 * 1024, 120 * 1024)


def _door_summary(door, duration: float) -> Dict:
    stats = door.summary()
    top = door.policy.n_tiers - 1
    acc = door.accuracy_report()
    n = sum(c["queries"] for c in acc.values())
    exact = sum(c["queries"] * c["exact_bytes_fraction"] for c in acc.values())
    return {
        "door": stats,
        "goodput_top_tier": round(door.goodput(top, duration), 6),
        "estimates_recorded": n,
        "exact_bytes_fraction": round(exact / n, 6) if n else 0.0,
    }


def _frontdoor_once(
    seed: int, quick: bool, estimate: bool
) -> Tuple[SloCollector, "FrontDoor", FrontDoorWorkload, bool]:
    from repro.frontdoor import FrontDoor, FrontDoorPolicy

    wl = _frontdoor_workload(seed, quick)
    rdb = _frontdoor_ring(seed, quick)
    wl.load_into(rdb)
    slo = SloCollector().attach(rdb.dc.bus)
    budget = _frontdoor_budget(quick)
    if estimate:
        # statistics-driven: tier-sliced valve over *predicted* bytes
        door = FrontDoor(rdb, policy=FrontDoorPolicy(
            tier_boundaries=FRONTDOOR_TIERS, byte_budget=budget,
            admission="estimate", tag_tiers=True,
        ))
    else:
        # blind twin: same tiers/deadlines/tickets, but admission falls
        # to the dispatcher's post-compile byte valve with the same cap
        door = FrontDoor(rdb, policy=FrontDoorPolicy(
            tier_boundaries=FRONTDOOR_TIERS, admission="none",
            tag_tiers=True,
        ))
        rdb.byte_budget = budget
    wl.offer_to(door)
    completed = rdb.run_until_done(max_time=MAX_TIME)
    return slo, door, wl, completed


def _run_frontdoor(seed: int, quick: bool, target: SloTarget) -> Tuple[Dict, Dict]:
    slo_on, door_on, wl, completed = _frontdoor_once(seed, quick, True)
    slo_off, door_off, _, _ = _frontdoor_once(seed, quick, False)
    verdict = slo_on.verdict("frontdoor", seed, target)
    verdict_off = slo_off.verdict("frontdoor", seed, target)
    duration = wl.duration
    bandwidth = (3 if quick else 6) * MB
    extras = {
        "offered": door_on.offered,
        "completed_in_time": completed,
        "capacity_ratio_burst": round(wl.capacity_ratio(bandwidth), 6),
        "capacity_ratio_base": round(
            wl.capacity_ratio(bandwidth, in_burst=False), 6
        ),
        "byte_budget": _frontdoor_budget(quick),
        # the acceptance pair: admitted tail and protected-tier goodput,
        # statistics-driven valve vs the blind byte valve
        "p999_estimate_on": verdict["latency"]["p999"],
        "p999_estimate_off": verdict_off["latency"]["p999"],
        "goodput_on": _door_summary(door_on, duration)["goodput_top_tier"],
        "goodput_off": _door_summary(door_off, duration)["goodput_top_tier"],
        "estimate_on": _door_summary(door_on, duration),
        "estimate_off": _door_summary(door_off, duration),
        "estimate_off_verdict": verdict_off,
    }
    return verdict, extras


# per-engine objectives for the all-engines burst: probes must stay
# fast, scans may stretch, folds must keep flowing
FRONTDOOR_ENGINE_TARGETS: Dict[str, EngineSloTarget] = {
    # a probe's latency floor is the ring rotation wait (~0.37 s on the
    # thin 4-node scenario ring), not the 4 KB transfer
    "kv": EngineSloTarget(p99=0.5, max_failure_rate=1.0),
    "mal": EngineSloTarget(p99=5.0, max_failure_rate=1.0),
    "stream": EngineSloTarget(min_throughput=0.5, max_failure_rate=1.0),
}


def _mixed_overload_once(
    seed: int, quick: bool, estimate: bool
) -> Tuple[SloCollector, "FrontDoor", FrontDoorWorkload, bool]:
    from repro.frontdoor import FrontDoor, FrontDoorPolicy

    # the burst floods all three engine classes at once: wide scans,
    # cold probes, grouped folds over the cold wide columns
    wl = _frontdoor_workload(
        seed, quick, burst_kv_rate=40.0, burst_stream_rate=4.0
    )
    rdb = _frontdoor_ring(seed, quick)
    wl.load_into(rdb)
    slo = SloCollector().attach(rdb.dc.bus)
    budget = _frontdoor_budget(quick)
    if estimate:
        # tag_tiers stays off: registrations keep their engine tags so
        # the per-engine-class verdicts reuse the mixed-engine machinery
        door = FrontDoor(rdb, policy=FrontDoorPolicy(
            tier_boundaries=FRONTDOOR_TIERS, byte_budget=budget,
            admission="estimate",
        ))
    else:
        door = FrontDoor(rdb, policy=FrontDoorPolicy(
            tier_boundaries=FRONTDOOR_TIERS, admission="none",
        ))
        rdb.byte_budget = budget
    wl.offer_to(door)
    completed = rdb.run_until_done(max_time=MAX_TIME)
    return slo, door, wl, completed


def _run_mixed_engine_overload(
    seed: int, quick: bool, target: SloTarget
) -> Tuple[Dict, Dict]:
    slo_on, door_on, wl, completed = _mixed_overload_once(seed, quick, True)
    slo_off, door_off, _, _ = _mixed_overload_once(seed, quick, False)
    duration = wl.duration
    verdict = slo_on.verdict("mixed-engine-overload", seed, target)
    verdict["engine_classes"] = slo_on.engine_verdicts(
        FRONTDOOR_ENGINE_TARGETS, duration=duration
    )
    verdict_off = slo_off.verdict("mixed-engine-overload", seed, target)
    verdict_off["engine_classes"] = slo_off.engine_verdicts(
        FRONTDOOR_ENGINE_TARGETS, duration=duration
    )
    bandwidth = (3 if quick else 6) * MB
    extras = {
        "offered": door_on.offered,
        "completed_in_time": completed,
        "capacity_ratio_burst": round(wl.capacity_ratio(bandwidth), 6),
        "p999_estimate_on": verdict["latency"]["p999"],
        "p999_estimate_off": verdict_off["latency"]["p999"],
        "engine_p99_on": {
            eng: v["p99"] for eng, v in verdict["engine_classes"].items()
        },
        "engine_p99_off": {
            eng: v["p99"] for eng, v in verdict_off["engine_classes"].items()
        },
        "estimate_on": _door_summary(door_on, duration),
        "estimate_off": _door_summary(door_off, duration),
        "estimate_off_verdict": verdict_off,
    }
    return verdict, extras


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "diurnal",
            "day/night arrival-rate cycle over a Gaussian hot set",
            SloTarget(p50=1.0, p99=12.0, p999=18.0),
            _run_diurnal,
        ),
        ScenarioSpec(
            "flash-crowd",
            "step burst far above ring capacity on a small hot set",
            SloTarget(p50=6.0, p99=20.0, p999=36.0),
            _run_flash_crowd,
        ),
        ScenarioSpec(
            "multi-tenant",
            "Zipf tenant mix with per-tenant SLOs and fairness",
            SloTarget(p50=2.0, p99=18.0, p999=24.0),
            _run_multi_tenant,
        ),
        ScenarioSpec(
            "locality-shift",
            "drifting interest over block-placed federation data",
            SloTarget(p50=1.0, p99=3.0, p999=4.0),
            _run_locality_shift,
        ),
        ScenarioSpec(
            "gateway-chaos",
            "gateway crash mid-workload, serve handoff on vs off",
            SloTarget(p50=1.0, p99=2.5, p999=4.5),
            _run_gateway_chaos,
        ),
        ScenarioSpec(
            "mixed-engine",
            "KV probes, MAL scans and streaming folds on one ring",
            SloTarget(p50=0.5, p99=3.0, p999=5.0),
            _run_mixed_engine,
        ),
        ScenarioSpec(
            "frontdoor",
            "statistics-driven admission vs blind byte valve, 3x overload",
            SloTarget(p50=1.0, p99=6.0, p999=8.0, max_failure_rate=0.6),
            _run_frontdoor,
        ),
        ScenarioSpec(
            "mixed-engine-overload",
            "all-engines cold burst through the front door, per-class SLOs",
            SloTarget(p50=1.0, p99=6.0, p999=8.0, max_failure_rate=0.6),
            _run_mixed_engine_overload,
        ),
        ScenarioSpec(
            "overload",
            "lossy cold-data flood with closed-loop admission on vs off",
            SloTarget(p50=2.5, p99=13.0, p999=16.0, max_failure_rate=0.92),
            _run_overload,
        ),
        ScenarioSpec(
            "split-under-load",
            "cold flood forcing a ring split, controller on vs off",
            SloTarget(p50=2.5, p99=14.0, p999=18.0, max_failure_rate=0.88),
            _run_split_under_load,
        ),
    )
}


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def run_scenario(name: str, seed: int = 0, quick: bool = True) -> Dict:
    """Run one named scenario; raises ``KeyError`` on unknown names."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; pick from {', '.join(SCENARIOS)}"
        )
    return SCENARIOS[name].run(seed, quick)


def run_suite(
    names: Optional[Sequence[str]] = None,
    seeds: Iterable[int] = (0,),
    quick: bool = True,
) -> Dict:
    """Run scenarios x seeds; returns the ``BENCH_slo.json`` payload."""
    names = list(names) if names is not None else scenario_names()
    runs = [run_scenario(name, seed, quick) for name in names for seed in seeds]
    return {
        "quick": quick,
        "seeds": list(seeds),
        "scenarios": {
            name: [r for r in runs if r["name"] == name] for name in names
        },
    }
