"""The section 5.3 non-uniform (Gaussian) access workload.

"The used scenario is the one defined in section 5.1 with exception for
the data access distribution.  The Gaussian distribution is centered
around BAT id 500 with a standard deviation of 50.  All the nodes use
the same distribution."

The resulting BAT populations (paper's terminology):

* *in vogue*  -- ids within roughly one standard deviation of the mean,
  touched hundreds of times,
* *standard*  -- the borders of the bell,
* *unpopular* -- the far tails, touched fewer than ~20 times.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.core.query import QuerySpec
from repro.sim.rng import RngRegistry
from repro.workloads.base import UniformDataset, Workload

__all__ = ["GaussianWorkload"]


class GaussianWorkload(Workload):
    """Gaussian BAT choice around a hot centre."""

    def __init__(
        self,
        dataset: UniformDataset,
        n_nodes: int = 10,
        queries_per_second: float = 80.0,
        duration: float = 60.0,
        mean: float = 500.0,
        std: float = 50.0,
        min_bats: int = 1,
        max_bats: int = 5,
        min_proc_time: float = 0.100,
        max_proc_time: float = 0.200,
        remote_only: bool = True,
        seed: int = 0,
        tag: str = "",
    ):
        if queries_per_second <= 0 or duration <= 0:
            raise ValueError("rate and duration must be positive")
        if std <= 0:
            raise ValueError("std must be positive")
        self.dataset = dataset
        self.n_nodes = n_nodes
        self.queries_per_second = queries_per_second
        self.duration = duration
        self.mean = mean
        self.std = std
        self.min_bats = min_bats
        self.max_bats = max_bats
        self.min_proc_time = min_proc_time
        self.max_proc_time = max_proc_time
        self.remote_only = remote_only
        self.tag = tag
        self._rng = RngRegistry(seed)

    # ------------------------------------------------------------------
    def draw_bat(self, rng: random.Random, node: int) -> int:
        """One Gaussian draw, clipped to the id range; remote-only
        workloads re-draw BATs the node owns."""
        n = self.dataset.n_bats
        while True:
            bat_id = int(round(rng.gauss(self.mean, self.std)))
            if not 0 <= bat_id < n:
                continue
            if self.remote_only and self.n_nodes > 1 and bat_id % self.n_nodes == node:
                continue
            return bat_id

    def pick_bats(self, rng: random.Random, node: int) -> List[int]:
        count = rng.randint(self.min_bats, self.max_bats)
        bats: List[int] = []
        while len(bats) < count:
            bat_id = self.draw_bat(rng, node)
            if bat_id not in bats:
                bats.append(bat_id)
        return bats

    @property
    def total_queries(self) -> int:
        return int(self.queries_per_second * self.duration) * self.n_nodes

    def queries(self) -> Iterator[QuerySpec]:
        interval = 1.0 / self.queries_per_second
        per_node = int(self.queries_per_second * self.duration)
        query_id = 0
        for node in range(self.n_nodes):
            rng = self._rng.stream(f"node-{node}")
            for k in range(per_node):
                bats = self.pick_bats(rng, node)
                times = [
                    rng.uniform(self.min_proc_time, self.max_proc_time)
                    for _ in bats
                ]
                yield QuerySpec.simple(
                    query_id,
                    node=node,
                    arrival=k * interval,
                    bat_ids=bats,
                    processing_times=times,
                    tag=self.tag,
                )
                query_id += 1
