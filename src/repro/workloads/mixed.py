"""Mixed-engine workload: three QPU classes on one ring (docs/qpu.md).

The QPU refactor's payoff scenario: point lookups, MAL analytics and
streaming aggregates share a single hot-set economy.  One table is
partitioned over the ring, then three tenant classes hammer it through
their respective engines:

* **kv** -- high-rate point probes with a hot key set, so a couple of
  partitions accumulate LOI against everyone else,
* **mal** -- moderate-rate SQL group-sum range scans (the paper's own
  query class),
* **stream** -- low-rate whole-table streaming folds that touch every
  partition exactly once per query, in ring-cycle order.

Arrivals sit on per-class deterministic grids and every random choice
comes from a seeded per-class stream, so a ``(params, seed)`` pair
replays bit-identically -- the property the scenario suite and
``BENCH_slo.json`` rely on.  The scenario wrapper lives in
:mod:`repro.workloads.suite` (``mixed-engine``), which grades each
class against its own :class:`~repro.metrics.slo.EngineSloTarget`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.dbms.qpu import KvLookup, StreamAggregate

__all__ = ["MixedEngineWorkload"]

# (arrival, node, request) -- request is SQL text or a QPU request object
Submission = Tuple[float, int, Any]


@dataclass
class MixedEngineWorkload:
    """Deterministic three-engine request mix over one partitioned table."""

    n_rows: int = 6000
    rows_per_partition: int = 500
    n_nodes: int = 4
    kv_rate: float = 30.0        # point probes per simulated second
    mal_rate: float = 5.0        # SQL range scans per simulated second
    stream_rate: float = 1.0     # whole-table folds per simulated second
    duration: float = 5.0
    hot_keys: int = 16           # size of the KV hot key set
    hot_fraction: float = 0.8    # probes hitting the hot set
    miss_fraction: float = 0.02  # probes for keys past the table end
    table: str = "mixed"
    seed: int = 0
    counts: Dict[str, int] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_rows < self.rows_per_partition:
            raise ValueError("need at least one full partition")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    def table_data(self) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        return {
            "id": np.arange(self.n_rows, dtype=np.int64),
            "val": np.round(rng.uniform(0.0, 100.0, self.n_rows), 3),
            "grp": rng.integers(0, 8, self.n_rows),
        }

    def load_into(self, rdb) -> None:
        """Load the shared table into a :class:`RingDatabase`."""
        rdb.load_table(
            self.table,
            self.table_data(),
            rows_per_partition=self.rows_per_partition,
        )

    # ------------------------------------------------------------------
    # request streams
    # ------------------------------------------------------------------
    def _kv_requests(self) -> Iterator[Submission]:
        """Zipf-ish probes: ``hot_fraction`` land on ``hot_keys`` keys
        inside the first partition, a sliver are deliberate misses."""
        rng = random.Random(self.seed * 7919 + 1)
        hot = [rng.randrange(self.rows_per_partition) for _ in range(self.hot_keys)]
        for i in range(int(self.duration * self.kv_rate)):
            roll = rng.random()
            if roll < self.miss_fraction:
                key = self.n_rows + rng.randrange(1000)
            elif roll < self.miss_fraction + self.hot_fraction:
                key = hot[rng.randrange(len(hot))]
            else:
                key = rng.randrange(self.n_rows)
            yield (
                i / self.kv_rate,
                rng.randrange(self.n_nodes),
                KvLookup(table=self.table, key=key, column="val"),
            )

    def _mal_requests(self) -> Iterator[Submission]:
        rng = random.Random(self.seed * 7919 + 2)
        for i in range(int(self.duration * self.mal_rate)):
            lo = rng.randrange(0, self.n_rows - self.rows_per_partition)
            hi = lo + rng.randrange(
                self.rows_per_partition // 2, 3 * self.rows_per_partition
            )
            sql = (
                f"SELECT grp, sum(val) s FROM {self.table} "
                f"WHERE id >= {lo} AND id < {hi} GROUP BY grp"
            )
            yield (i / self.mal_rate, rng.randrange(self.n_nodes), sql)

    def _stream_requests(self) -> Iterator[Submission]:
        rng = random.Random(self.seed * 7919 + 3)
        funcs = ("sum", "avg", "count", "max")
        for i in range(int(self.duration * self.stream_rate)):
            func = funcs[i % len(funcs)]
            grouped = i % 2 == 0
            yield (
                i / self.stream_rate,
                rng.randrange(self.n_nodes),
                StreamAggregate(
                    table=self.table,
                    value_column="val",
                    func=func,
                    group_column="grp" if grouped else None,
                ),
            )

    def submissions(self) -> List[Submission]:
        """All requests merged in arrival order (stable per class)."""
        merged = (
            list(self._kv_requests())
            + list(self._mal_requests())
            + list(self._stream_requests())
        )
        merged.sort(key=lambda s: s[0])
        return merged

    # ------------------------------------------------------------------
    def submit_to(self, rdb) -> int:
        """Load the table, submit every request; returns the count."""
        self.load_into(rdb)
        self.counts = {"kv": 0, "mal": 0, "stream": 0}
        for arrival, node, request in self.submissions():
            handle = rdb.submit_request(request, node=node, arrival=arrival)
            self.counts[handle.engine] += 1
        return sum(self.counts.values())
