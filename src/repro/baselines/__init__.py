"""Baseline architectures the paper positions itself against (section 7).

* :mod:`repro.baselines.datacycle` -- the seminal DataCycle [18]: a
  central pump repetitively broadcasts the *entire* database; clients
  filter on the fly.  "The cycle time, i.e., the time to broadcast the
  entire database, is the major performance factor."
* :mod:`repro.baselines.broadcast_disks` -- Broadcast Disks [1]:
  multiple virtual disks spinning at different speeds on one channel,
  so bandwidth is "allocated to data items in proportion to their
  importance".

Both expose the same workload interface as
:class:`~repro.core.ring.DataCyclotron` (``submit``/``run_until_done``/
``metrics``), so the benchmarks can replay identical
:class:`~repro.core.query.QuerySpec` streams against all three systems
and compare query life times -- the quantitative version of the paper's
qualitative related-work contrast.
"""

from repro.baselines.broadcast_disks import BroadcastDisks
from repro.baselines.datacycle import DataCycle

__all__ = ["BroadcastDisks", "DataCycle"]
