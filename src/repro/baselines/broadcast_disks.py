"""Broadcast Disks [Acharya et al. 1995] as a baseline.

Paper section 7: "The Broadcast Disk superimposes multiple disks
spinning at different speeds on a single broadcast channel creating an
arbitrarily fine-grained memory hierarchy. ... bandwidth can be
allocated to data items in proportion to their importance."

The classic construction: items are partitioned into ``disks`` by
popularity; disk *i* has a relative broadcast frequency ``rel_freq[i]``.
The schedule interleaves *minor cycles*: each minor cycle carries one
chunk from every disk, where disk *i* is split into
``max_chunks / rel_freq[i]`` chunks.  Hot items therefore recur many
times per *major cycle* (one full rotation of the coldest disk).

We materialise one major cycle's item sequence, compute per-item
completion offsets, and reuse the closed-form wait machinery of the
DataCycle baseline.  Items in faster disks wait much less -- at the
price of longer waits for the cold tail, the Broadcast Disks trade-off.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.datacycle import BroadcastScheduleMixin
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator

__all__ = ["BroadcastDisks"]


class BroadcastDisks(BroadcastScheduleMixin):
    """A popularity-tiered periodic broadcast."""

    def __init__(
        self,
        bandwidth: float = 10 * 1e9 / 8,
        rel_freqs: Sequence[int] = (4, 2, 1),
        header_size: int = 64,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if not rel_freqs or any(f < 1 for f in rel_freqs):
            raise ValueError("rel_freqs must be positive integers")
        if any(a < b for a, b in zip(rel_freqs, rel_freqs[1:])):
            raise ValueError("rel_freqs must be non-increasing (hot disks first)")
        self.bandwidth = bandwidth
        self.rel_freqs = tuple(int(f) for f in rel_freqs)
        self.header_size = header_size
        self.sim = Simulator()
        self.metrics = MetricsCollector()
        self._sizes: Dict[int, int] = {}
        self._popularity: Dict[int, float] = {}
        self._offsets: Dict[int, float] = {}
        self.cycle_time = 0.0  # the MAJOR cycle
        self.disk_of: Dict[int, int] = {}
        self._submitted = 0
        self._completed = 0
        self._finalised = False

    # ------------------------------------------------------------------
    def add_bat(self, bat_id: int, size: int, popularity: float = 1.0) -> None:
        """Register a BAT with an importance estimate (higher = hotter)."""
        if self._finalised:
            raise RuntimeError("schedule already finalised")
        if bat_id in self._sizes:
            raise ValueError(f"BAT {bat_id} already registered")
        if size <= 0:
            raise ValueError("size must be positive")
        self._sizes[bat_id] = size
        self._popularity[bat_id] = popularity

    def finalise(self) -> None:
        """Partition items into disks and lay out one major cycle."""
        if self._finalised:
            return
        self._finalised = True
        if not self._sizes:
            return
        ranked = sorted(
            self._sizes, key=lambda b: self._popularity[b], reverse=True
        )
        n_disks = len(self.rel_freqs)
        per_disk = max(1, -(-len(ranked) // n_disks))
        disks: List[List[int]] = [
            ranked[i * per_disk : (i + 1) * per_disk] for i in range(n_disks)
        ]
        for disk_index, items in enumerate(disks):
            for bat_id in items:
                self.disk_of[bat_id] = disk_index

        # the interleaved schedule: max_freq minor cycles per major cycle;
        # disk i appears in every (max_freq / rel_freq[i])-th share
        max_freq = self.rel_freqs[0]
        sequence: List[int] = []
        chunks: List[List[List[int]]] = []
        for disk_index, items in enumerate(disks):
            n_chunks = max(1, max_freq // self.rel_freqs[disk_index])
            size = max(1, -(-len(items) // n_chunks)) if items else 1
            chunks.append(
                [items[k * size : (k + 1) * size] for k in range(n_chunks)]
            )
        for minor in range(max_freq):
            for disk_index in range(n_disks):
                disk_chunks = chunks[disk_index]
                chunk = disk_chunks[minor % len(disk_chunks)]
                sequence.extend(chunk)

        clock = 0.0
        for bat_id in sequence:
            clock += (self._sizes[bat_id] + self.header_size) / self.bandwidth
            # remember the FIRST completion offset; later repeats within
            # the major cycle are folded in below
            self._offsets.setdefault(bat_id, clock)
        self.cycle_time = clock
        self._schedule_sequence = sequence
        # per-item completion times across the whole major cycle, for
        # exact waits when an item repeats
        completions: Dict[int, List[float]] = {}
        clock = 0.0
        for bat_id in sequence:
            clock += (self._sizes[bat_id] + self.header_size) / self.bandwidth
            completions.setdefault(bat_id, []).append(clock)
        self._completions = completions

    # ------------------------------------------------------------------
    def next_available(self, bat_id: int, now: float) -> float:
        """Earliest completion of ``bat_id``, honouring in-cycle repeats."""
        self.finalise()
        if self.cycle_time <= 0:
            return now
        base = (now // self.cycle_time) * self.cycle_time
        for _ in range(2):  # this cycle, else the next one
            for completion in self._completions[bat_id]:
                if base + completion >= now:
                    return base + completion
            base += self.cycle_time
        raise AssertionError("unreachable: item must appear every major cycle")

    def submit(self, spec):
        self.finalise()
        return super().submit(spec)

    # ------------------------------------------------------------------
    def broadcasts_per_major_cycle(self, bat_id: int) -> int:
        self.finalise()
        return len(self._completions.get(bat_id, []))

    @property
    def total_bytes(self) -> int:
        return sum(self._sizes.values())
