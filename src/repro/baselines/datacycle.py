"""The DataCycle architecture [Herman et al. 1987] as a baseline.

Paper section 7: "The DataCycle makes data items available by
repetitive broadcast of the entire database stored in a central pump.
... The cycle time, i.e., the time to broadcast the entire database, is
the major performance factor.  It only depends on the speed of hardware
components, the filter selectivity, and the network bandwidth."

The model: a pump broadcasts every BAT in a fixed order, cyclically, at
``bandwidth`` bytes/second.  A blocked pin is served the next time its
BAT's broadcast completes; queries otherwise behave exactly like Data
Cyclotron queries (the same :class:`~repro.core.query.QuerySpec`,
sequential pins with operator time in between).  Because the schedule
is deterministic, availability is computed in closed form -- no
per-message events -- which keeps the baseline cheap to simulate.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, Iterable

from repro.core.query import QuerySpec
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.process import Delay, Process

__all__ = ["DataCycle", "BroadcastScheduleMixin"]


class BroadcastScheduleMixin:
    """Shared machinery: closed-form waits on a periodic broadcast."""

    sim: Simulator
    metrics: MetricsCollector
    _submitted: int
    _completed: int

    # subclasses fill these
    _offsets: Dict[int, float]  # bat_id -> completion offset within a cycle
    cycle_time: float

    def next_available(self, bat_id: int, now: float) -> float:
        """Earliest time >= now at which ``bat_id`` finishes broadcasting."""
        offset = self._offsets[bat_id]
        if self.cycle_time <= 0:
            return now
        k = math.ceil((now - offset) / self.cycle_time)
        return max(offset + k * self.cycle_time, offset)

    def mean_wait(self) -> float:
        """Expected pin wait for a uniformly random arrival: half a cycle."""
        return self.cycle_time / 2

    # ------------------------------------------------------------------
    def submit(self, spec: QuerySpec) -> Process:
        unknown = [b for b in spec.bat_ids if b not in self._offsets]
        if unknown:
            raise ValueError(f"query {spec.query_id} references unknown BATs {unknown}")
        self._submitted += 1
        delay = spec.arrival - self.sim.now
        if delay < 0:
            raise ValueError("arrival is in the past")
        return Process(self.sim, self._query_process(spec), start_delay=delay)

    def submit_all(self, specs: Iterable[QuerySpec]) -> int:
        count = 0
        for spec in specs:
            self.submit(spec)
            count += 1
        return count

    def _query_process(self, spec: QuerySpec) -> Generator:
        self.metrics.query_registered(self.sim.now, spec.query_id, spec.node, spec.tag)
        for step in spec.steps:
            if step.op_time > 0:
                yield Delay(step.op_time)
            available = self.next_available(step.bat_id, self.sim.now)
            self.metrics.bat_pinned(self.sim.now, step.bat_id)
            wait = available - self.sim.now
            if wait > 0:
                yield Delay(wait)
        if spec.tail_time > 0:
            yield Delay(spec.tail_time)
        self._completed += 1
        self.metrics.query_finished(self.sim.now, spec.query_id)

    def run_until_done(self, max_time: float = 3600.0, check_interval: float = 1.0) -> bool:
        while self.sim.now < max_time:
            if self._completed >= self._submitted:
                return True
            self.sim.run(until=min(self.sim.now + check_interval, max_time))
        return self._completed >= self._submitted


class DataCycle(BroadcastScheduleMixin):
    """A central pump broadcasting the whole database, cyclically."""

    def __init__(self, bandwidth: float = 10 * 1e9 / 8, header_size: int = 64):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.header_size = header_size
        self.sim = Simulator()
        self.metrics = MetricsCollector()
        self._sizes: Dict[int, int] = {}
        self._offsets: Dict[int, float] = {}
        self.cycle_time = 0.0
        self._submitted = 0
        self._completed = 0

    # ------------------------------------------------------------------
    def add_bat(self, bat_id: int, size: int) -> None:
        """Append a BAT to the broadcast schedule (id order of insertion)."""
        if bat_id in self._sizes:
            raise ValueError(f"BAT {bat_id} already registered")
        if size <= 0:
            raise ValueError("size must be positive")
        self._sizes[bat_id] = size
        wire = size + self.header_size
        self.cycle_time += wire / self.bandwidth
        # completion offset of this BAT within a cycle
        self._offsets[bat_id] = self.cycle_time

    @property
    def total_bytes(self) -> int:
        return sum(self._sizes.values())
