"""Ring topology wiring (paper section 4, Figure 2).

"The data is moved through the ring clockwise, i.e., a node sends BATs
... to its successor and it receives BATs from its predecessor.  The BAT
requests ... are sent anti-clockwise to reduce the latency when a
requested BAT is already on its way."

A :class:`Ring` therefore creates, for every adjacent node pair, two
directed channels:

* ``data`` -- node *i* -> node *i+1* (clockwise),
* ``request`` -- node *i* -> node *i-1* (anti-clockwise).

Indices are modulo the ring size; the object also answers successor /
predecessor queries and ring-wide aggregates used by the experiments
(total queued bytes = the "ring load" series of Figure 7).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.net.channel import Channel
from repro.sim.engine import Simulator

__all__ = ["Ring"]


class Ring:
    """Channels for an *n*-node storage ring."""

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        bandwidth: float,
        delay: float,
        data_queue_capacity: Optional[int] = None,
        request_queue_capacity: Optional[int] = None,
        data_loss_rate: float = 0.0,
        request_loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if n_nodes < 1:
            raise ValueError("a ring needs at least one node")
        self.sim = sim
        self.n_nodes = n_nodes
        rng = rng if rng is not None else random.Random(0)
        # data[i] carries BATs from node i to its successor
        self.data: List[Channel] = [
            Channel(
                sim,
                bandwidth=bandwidth,
                delay=delay,
                queue_capacity=data_queue_capacity,
                loss_rate=data_loss_rate,
                rng=rng,
                name=f"data[{i}->{(i + 1) % n_nodes}]",
            )
            for i in range(n_nodes)
        ]
        # request[i] carries requests from node i to its predecessor
        self.request: List[Channel] = [
            Channel(
                sim,
                bandwidth=bandwidth,
                delay=delay,
                queue_capacity=request_queue_capacity,
                loss_rate=request_loss_rate,
                rng=rng,
                name=f"req[{i}->{(i - 1) % n_nodes}]",
            )
            for i in range(n_nodes)
        ]

    # ------------------------------------------------------------------
    def successor(self, node: int) -> int:
        """Clockwise neighbour of ``node``."""
        return (node + 1) % self.n_nodes

    def predecessor(self, node: int) -> int:
        """Anti-clockwise neighbour of ``node``."""
        return (node - 1) % self.n_nodes

    def data_channel(self, node: int) -> Channel:
        """The channel on which ``node`` sends BATs to its successor."""
        return self.data[node]

    def request_channel(self, node: int) -> Channel:
        """The channel on which ``node`` sends requests to its predecessor."""
        return self.request[node]

    def hops_clockwise(self, src: int, dst: int) -> int:
        """Number of clockwise hops from ``src`` to ``dst``."""
        return (dst - src) % self.n_nodes

    def hops_anticlockwise(self, src: int, dst: int) -> int:
        """Number of anti-clockwise hops from ``src`` to ``dst``."""
        return (src - dst) % self.n_nodes

    # ------------------------------------------------------------------
    @property
    def total_data_queued_bytes(self) -> int:
        """Bytes of BATs sitting in all transmit queues (ring load proxy)."""
        return sum(ch.queued_bytes for ch in self.data)

    @property
    def total_data_messages_dropped(self) -> int:
        return sum(ch.stats.messages_dropped for ch in self.data)
