"""Ring topology wiring (paper section 4, Figure 2).

"The data is moved through the ring clockwise, i.e., a node sends BATs
... to its successor and it receives BATs from its predecessor.  The BAT
requests ... are sent anti-clockwise to reduce the latency when a
requested BAT is already on its way."

A :class:`Ring` therefore creates, for every adjacent node pair, two
directed channels:

* ``data`` -- node *i* -> node *i+1* (clockwise),
* ``request`` -- node *i* -> node *i-1* (anti-clockwise).

Indices are modulo the ring size; the object also answers successor /
predecessor queries and ring-wide aggregates used by the experiments
(total queued bytes = the "ring load" series of Figure 7).

Membership is dynamic: the fault-injection subsystem marks nodes dead
and alive, and :meth:`Ring.rewire` repairs the topology by re-pointing
every live node's channels at its nearest *live* neighbour.  The channel
objects themselves are stable (they belong to the sending node), so
messages already queued or on the wire survive a reconfiguration and are
delivered to the repaired successor.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.net.channel import Channel
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.events.bus import Bus

__all__ = ["Ring"]

Receiver = Callable[[Any, int], None]


class Ring:
    """Channels for an *n*-node storage ring."""

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        bandwidth: float,
        delay: float,
        data_queue_capacity: Optional[int] = None,
        request_queue_capacity: Optional[int] = None,
        data_loss_rate: float = 0.0,
        request_loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        bus: Optional["Bus"] = None,
    ):
        if n_nodes < 1:
            raise ValueError("a ring needs at least one node")
        self.sim = sim
        self.n_nodes = n_nodes
        rng = rng if rng is not None else random.Random(0)
        # data[i] carries BATs from node i to its successor
        self.data: List[Channel] = [
            Channel(
                sim,
                bandwidth=bandwidth,
                delay=delay,
                queue_capacity=data_queue_capacity,
                loss_rate=data_loss_rate,
                rng=rng,
                name=f"data[{i}->{(i + 1) % n_nodes}]",
                bus=bus,
            )
            for i in range(n_nodes)
        ]
        # request[i] carries requests from node i to its predecessor
        self.request: List[Channel] = [
            Channel(
                sim,
                bandwidth=bandwidth,
                delay=delay,
                queue_capacity=request_queue_capacity,
                loss_rate=request_loss_rate,
                rng=rng,
                name=f"req[{i}->{(i - 1) % n_nodes}]",
                bus=bus,
            )
            for i in range(n_nodes)
        ]
        self.alive: List[bool] = [True] * n_nodes
        # membership changes are rare; periodic ticks and invariant checks
        # read the live set every call, so cache it until set_alive moves
        self._live_cache: Optional[List[int]] = list(range(n_nodes))
        self._bat_receivers: List[Optional[Receiver]] = [None] * n_nodes
        self._request_receivers: List[Optional[Receiver]] = [None] * n_nodes

    # ------------------------------------------------------------------
    def successor(self, node: int) -> int:
        """Clockwise neighbour of ``node``."""
        return (node + 1) % self.n_nodes

    def predecessor(self, node: int) -> int:
        """Anti-clockwise neighbour of ``node``."""
        return (node - 1) % self.n_nodes

    # ------------------------------------------------------------------
    # dynamic membership (fault injection)
    # ------------------------------------------------------------------
    def install_node(self, node: int, on_bat: Receiver, on_request: Receiver) -> None:
        """Register the message handlers :meth:`rewire` connects channels to."""
        self._bat_receivers[node] = on_bat
        self._request_receivers[node] = on_request

    def set_alive(self, node: int, alive: bool) -> None:
        if self.alive[node] != alive:
            self.alive[node] = alive
            self._live_cache = None

    def is_alive(self, node: int) -> bool:
        return self.alive[node]

    @property
    def live_nodes(self) -> List[int]:
        cached = self._live_cache
        if cached is None:
            cached = [i for i in range(self.n_nodes) if self.alive[i]]
            self._live_cache = cached
        return list(cached)

    def live_successor(self, node: int) -> int:
        """Nearest live node clockwise of ``node`` (itself if sole survivor)."""
        if not any(self.alive):
            raise ValueError("no live nodes in the ring")
        for step in range(1, self.n_nodes + 1):
            candidate = (node + step) % self.n_nodes
            if self.alive[candidate]:
                return candidate
        return node  # pragma: no cover - unreachable, guarded above

    def live_predecessor(self, node: int) -> int:
        """Nearest live node anti-clockwise of ``node``."""
        if not any(self.alive):
            raise ValueError("no live nodes in the ring")
        for step in range(1, self.n_nodes + 1):
            candidate = (node - step) % self.n_nodes
            if self.alive[candidate]:
                return candidate
        return node  # pragma: no cover - unreachable, guarded above

    def rewire(
        self, requests_clockwise: bool = False, members: Optional[List[int]] = None
    ) -> None:
        """Repair the topology around ``members`` (default: the live set).

        Every member's data channel is pointed at its next member
        successor's BAT handler and its request channel at its next
        member predecessor's request handler (flipped for the
        ``requests_clockwise`` ablation).  Non-member nodes' channels
        keep their last receiver but carry no new traffic: dead senders
        are purged on crash and send nothing while down.

        ``members`` exists for the resilience subsystem: a silently
        failed node stays a *member* (wired in, swallowing the traffic
        delivered to it) until the failure detector confirms its death
        -- wiring around it any earlier would leak oracle knowledge of
        the failure into the topology.
        """
        members = sorted(members) if members is not None else self.live_nodes
        if not members:
            raise ValueError("cannot rewire an empty membership")
        count = len(members)
        for idx, i in enumerate(members):
            succ = members[(idx + 1) % count]
            pred = members[(idx - 1) % count]
            bat_receiver = self._bat_receivers[succ]
            req_target = succ if requests_clockwise else pred
            req_receiver = self._request_receivers[req_target]
            if bat_receiver is None or req_receiver is None:
                raise RuntimeError(f"node {succ if bat_receiver is None else req_target} has no installed receivers")
            self.data[i].set_receiver(bat_receiver)
            self.request[i].set_receiver(req_receiver)

    def data_channel(self, node: int) -> Channel:
        """The channel on which ``node`` sends BATs to its successor."""
        return self.data[node]

    def request_channel(self, node: int) -> Channel:
        """The channel on which ``node`` sends requests to its predecessor."""
        return self.request[node]

    def hops_clockwise(self, src: int, dst: int) -> int:
        """Number of clockwise hops from ``src`` to ``dst``."""
        return (dst - src) % self.n_nodes

    def hops_anticlockwise(self, src: int, dst: int) -> int:
        """Number of anti-clockwise hops from ``src`` to ``dst``."""
        return (src - dst) % self.n_nodes

    # ------------------------------------------------------------------
    @property
    def total_data_queued_bytes(self) -> int:
        """Bytes of BATs sitting in all transmit queues (ring load proxy)."""
        return sum(ch.queued_bytes for ch in self.data)

    @property
    def total_data_messages_dropped(self) -> int:
        return sum(ch.stats.messages_dropped for ch in self.data)
