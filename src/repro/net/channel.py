"""In-order asynchronous channels with optional loss injection.

"The underlying network is configured as asynchronous channels with
guaranteed order of arrival" (paper, section 4.3).  A :class:`Channel`
wraps a :class:`~repro.net.link.Link` and adds:

* a stable receiver callback (set after construction, so rings can be
  wired before node logic exists),
* probabilistic loss injection, used by the fault-injection tests to
  exercise the ``resend()`` recovery path of section 4.2.3,
* per-message-kind accounting.

Because the underlying link is FIFO at every stage (queue, wire,
propagation), order of arrival is guaranteed by construction; a property
test asserts it under random traffic.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.net.link import Link
from repro.sim.engine import Simulator

__all__ = ["Channel"]


class Channel:
    """A reliable-by-default, in-order message channel between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        delay: float,
        queue_capacity: Optional[int] = None,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "channel",
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.loss_rate = loss_rate
        self._rng = rng if rng is not None else random.Random(0)
        self._receiver: Optional[Callable[[Any, int], None]] = None
        self.dropped_by_loss = 0
        self.link = Link(
            sim,
            bandwidth=bandwidth,
            delay=delay,
            queue_capacity=queue_capacity,
            on_receive=self._arrived,
            name=name,
        )

    # ------------------------------------------------------------------
    def set_receiver(self, fn: Callable[[Any, int], None]) -> None:
        """Install the function invoked for every delivered message."""
        self._receiver = fn

    def set_drop_handler(self, fn: Callable[[Any, int], None]) -> None:
        """Install the DropTail notification handler on the wrapped link."""
        self.link.on_drop = fn

    def send(self, message: Any, size: int) -> bool:
        """Send a message; returns False if dropped (loss or DropTail)."""
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.dropped_by_loss += 1
            return False
        return self.link.send(message, size)

    @property
    def queued_bytes(self) -> int:
        return self.link.queued_bytes

    @property
    def stats(self):
        return self.link.stats

    # ------------------------------------------------------------------
    def _arrived(self, message: Any, size: int) -> None:
        if self._receiver is None:
            raise RuntimeError(f"channel {self.name!r} has no receiver installed")
        self._receiver(message, size)
