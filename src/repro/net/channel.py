"""In-order asynchronous channels with optional loss injection.

"The underlying network is configured as asynchronous channels with
guaranteed order of arrival" (paper, section 4.3).  A :class:`Channel`
wraps a :class:`~repro.net.link.Link` and adds:

* a stable receiver callback (set after construction, so rings can be
  wired before node logic exists),
* probabilistic loss injection, used by the fault-injection tests to
  exercise the ``resend()`` recovery path of section 4.2.3,
* per-message-kind accounting.

Because the underlying link is FIFO at every stage (queue, wire,
propagation), order of arrival is guaranteed by construction; a property
test asserts it under random traffic.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.events.types import ChannelLoss
from repro.net.link import Link
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.events.bus import Bus

__all__ = ["Channel"]


class Channel:
    """A reliable-by-default, in-order message channel between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        delay: float,
        queue_capacity: Optional[int] = None,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "channel",
        bus: Optional["Bus"] = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.loss_rate = loss_rate
        self.bus = bus
        self._rng = rng if rng is not None else random.Random(0)
        self._receiver: Optional[Callable[[Any, int], None]] = None
        self._loss_handler: Optional[Callable[[Any, int], None]] = None
        self.dropped_by_loss = 0
        self.link = Link(
            sim,
            bandwidth=bandwidth,
            delay=delay,
            queue_capacity=queue_capacity,
            on_receive=self._arrived,
            name=name,
            bus=bus,
        )

    # ------------------------------------------------------------------
    def set_receiver(self, fn: Callable[[Any, int], None]) -> None:
        """Install the function invoked for every delivered message."""
        self._receiver = fn

    def set_drop_handler(self, fn: Callable[[Any, int], None]) -> None:
        """Install the DropTail notification handler on the wrapped link."""
        self.link.on_drop = fn

    def set_loss_handler(self, fn: Callable[[Any, int], None]) -> None:
        """Install the handler invoked when loss injection eats a message.

        Keeping loss notification on the channel (symmetric with the
        DropTail handler on the link) lets senders account the two drop
        kinds separately instead of guessing from ``send``'s boolean.
        """
        self._loss_handler = fn

    def send(self, message: Any, size: int) -> bool:
        """Send a message; returns False if dropped (loss or DropTail)."""
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.dropped_by_loss += 1
            bus = self.bus
            if bus is not None and bus.wants(ChannelLoss):
                bus.publish(
                    ChannelLoss(self.sim.now, self.name, size, type(message).__name__)
                )
            if self._loss_handler is not None:
                self._loss_handler(message, size)
            return False
        return self.link.send(message, size)

    @property
    def queued_bytes(self) -> int:
        return self.link.queued_bytes

    @property
    def stats(self):
        return self.link.stats

    # ------------------------------------------------------------------
    # fault injection support
    # ------------------------------------------------------------------
    def in_channel_items(self) -> list:
        """Every (message, size) pair queued or on the wire, sender first."""
        return self.link.queued_items() + self.link.in_flight_items()

    def purge_queue(self) -> list:
        """Drop all queued messages (crash semantics); returns the losses."""
        return self.link.purge_queue()

    def degrade(
        self,
        bandwidth_factor: float = 1.0,
        extra_delay: float = 0.0,
        loss_rate: Optional[float] = None,
    ) -> dict:
        """Apply a link-degradation fault; returns the pre-fault settings.

        Bandwidth and delay changes affect messages serialised after the
        call; messages already on the wire keep their old timing.
        """
        if bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")
        if self.link.ff_transit is not None:
            # freeze the pre-fault timing of anything fast-forwarded here
            self.link.ff_transit.flush()
        before = {
            "bandwidth": self.link.bandwidth,
            "delay": self.link.delay,
            "loss_rate": self.loss_rate,
        }
        self.link.bandwidth = self.link.bandwidth * bandwidth_factor
        self.link.delay = self.link.delay + extra_delay
        if loss_rate is not None:
            # unlike the constructor, a blackout (1.0) is allowed here:
            # degradations are bounded by the fault's duration
            if not 0.0 <= loss_rate <= 1.0:
                raise ValueError("loss_rate must be in [0, 1]")
            self.loss_rate = loss_rate
        return before

    def restore(self, settings: dict) -> None:
        """Undo a :meth:`degrade`, restoring the saved settings."""
        if self.link.ff_transit is not None:
            self.link.ff_transit.flush()
        self.link.bandwidth = settings["bandwidth"]
        self.link.delay = settings["delay"]
        self.loss_rate = settings["loss_rate"]

    # ------------------------------------------------------------------
    def _arrived(self, message: Any, size: int) -> None:
        if self._receiver is None:
            raise RuntimeError(f"channel {self.name!r} has no receiver installed")
        self._receiver(message, size)
