"""Analytic host-side CPU/memory-bus cost model of network transfers.

Reproduces Figure 1 of the paper: the CPU-load breakdown of high-speed
transfers under three technologies --

* ``LEGACY`` (everything on the CPU): the kernel TCP/IP stack burns
  cycles on intermediate data copying, context switches, the driver and
  network-stack processing.  The paper quotes the rule of thumb that
  "about 1 GHz in CPU performance is necessary for every 1 Gb/s network
  throughput" [12], which this model uses for calibration.
* ``OFFLOAD`` (network stack on the NIC): stack processing moves to the
  NIC but "offloading only the network stack processing to the NIC is
  not sufficient ... data copying must be avoided as well" -- the copy
  and context-switch costs remain.
* ``RDMA``: direct data placement removes the copies, OS bypass removes
  the context switches; only a negligible driver/doorbell cost remains.

The model also accounts memory-bus crossings: RDMA crosses the bus once
per transfer, the kernel stack several times (section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

__all__ = ["TransferMode", "HostCostModel", "CpuBreakdown"]


class TransferMode(Enum):
    """The three technologies contrasted in Figure 1."""

    LEGACY = "everything-on-cpu"
    OFFLOAD = "network-stack-on-nic"
    RDMA = "rdma"


# Fraction of the 1 GHz-per-Gb/s budget each component consumes when the
# whole stack runs on the CPU.  Figure 1 shows data copying dominating,
# followed by the network stack, context switches, and the driver.
_LEGACY_SHARES: Dict[str, float] = {
    "data_copying": 0.45,
    "network_stack": 0.30,
    "context_switches": 0.15,
    "driver": 0.10,
}

# Memory-bus crossings per payload byte (section 2.2): the kernel stack
# copies user->kernel, kernel->NIC plus the DMA itself; RDMA DMAs once.
_BUS_CROSSINGS = {
    TransferMode.LEGACY: 3,
    TransferMode.OFFLOAD: 2,
    TransferMode.RDMA: 1,
}


@dataclass(frozen=True)
class CpuBreakdown:
    """Per-component CPU load (fractions of one core) for a transfer rate."""

    data_copying: float
    network_stack: float
    context_switches: float
    driver: float

    @property
    def total(self) -> float:
        return (
            self.data_copying
            + self.network_stack
            + self.context_switches
            + self.driver
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "data_copying": self.data_copying,
            "network_stack": self.network_stack,
            "context_switches": self.context_switches,
            "driver": self.driver,
        }


class HostCostModel:
    """CPU and memory-bus cost of sustaining a given network throughput.

    Parameters
    ----------
    cpu_ghz:
        Aggregate clock of the host CPU; the paper's testbed is a
        2.33 GHz quad core that was "barely able to saturate the
        10 Gb/s link" under full load.
    ghz_per_gbps:
        The calibration constant of [12]; 1.0 by default.
    """

    def __init__(self, cpu_ghz: float = 2.33 * 4, ghz_per_gbps: float = 1.0):
        if cpu_ghz <= 0:
            raise ValueError("cpu_ghz must be positive")
        self.cpu_ghz = cpu_ghz
        self.ghz_per_gbps = ghz_per_gbps

    # ------------------------------------------------------------------
    def breakdown(self, mode: TransferMode, throughput_gbps: float) -> CpuBreakdown:
        """CPU-load breakdown (fraction of total CPU) at ``throughput_gbps``."""
        if throughput_gbps < 0:
            raise ValueError("throughput cannot be negative")
        budget = throughput_gbps * self.ghz_per_gbps / self.cpu_ghz
        s = _LEGACY_SHARES
        if mode is TransferMode.LEGACY:
            shares = s
        elif mode is TransferMode.OFFLOAD:
            # Stack processing moved to the NIC; copies and switches stay.
            shares = {**s, "network_stack": 0.0}
        else:  # RDMA: zero-copy + OS bypass; tiny doorbell cost remains.
            shares = {
                "data_copying": 0.0,
                "network_stack": 0.0,
                "context_switches": 0.0,
                "driver": s["driver"] * 0.2,
            }
        return CpuBreakdown(
            data_copying=budget * shares["data_copying"],
            network_stack=budget * shares["network_stack"],
            context_switches=budget * shares["context_switches"],
            driver=budget * shares["driver"],
        )

    def cpu_load(self, mode: TransferMode, throughput_gbps: float) -> float:
        """Total CPU load fraction (may exceed 1.0 = saturated CPU)."""
        return self.breakdown(mode, throughput_gbps).total

    def max_throughput_gbps(self, mode: TransferMode, link_gbps: float) -> float:
        """Achievable throughput: min of the link and what the CPU sustains."""
        per_gbps = self.cpu_load(mode, 1.0)
        if per_gbps <= 0:
            return link_gbps
        cpu_limit = 1.0 / per_gbps
        return min(link_gbps, cpu_limit)

    def bus_crossings(self, mode: TransferMode) -> int:
        """Memory-bus crossings per transferred byte (section 2.2)."""
        return _BUS_CROSSINGS[mode]

    def bus_bytes(self, mode: TransferMode, payload_bytes: int) -> int:
        """Total bytes moved over the memory bus for a payload."""
        return payload_bytes * _BUS_CROSSINGS[mode]
