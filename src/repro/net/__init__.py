"""Network substrate: links, channels, ring topology, host cost model.

Models the paper's simulated network (section 5, "Setup"): every pair of
adjacent ring nodes is interconnected through a duplex link with 10 Gb/s
bandwidth, 350 us propagation delay, and a DropTail queue policy.  On top
of the raw :class:`~repro.net.link.Link` sits an in-order asynchronous
:class:`~repro.net.channel.Channel` (the paper requires "asynchronous
channels with guaranteed order of arrival", section 4.3) and the
:class:`~repro.net.topology.Ring` builder that wires data clockwise and
requests anti-clockwise (section 4, Figure 2).

:mod:`repro.net.hostmodel` reproduces the analytic CPU-load breakdown of
Figure 1 (legacy stack vs NIC offload vs RDMA).
"""

from repro.net.channel import Channel
from repro.net.link import Link, LinkStats
from repro.net.hostmodel import HostCostModel, TransferMode
from repro.net.topology import Ring

__all__ = [
    "Channel",
    "HostCostModel",
    "Link",
    "LinkStats",
    "Ring",
    "TransferMode",
]
