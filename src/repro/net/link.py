"""A simplex network link with bandwidth, propagation delay and DropTail.

The paper's base topology interconnects each pair of ring neighbours
"through a duplex-link with 10 Gb/s bandwidth, 350 us delay, and DropTail
as full queue policy" (section 5, Setup).  A duplex link is modelled as
two independent :class:`Link` objects, one per direction -- which is also
how the Data Cyclotron uses them: BATs clockwise, requests anti-clockwise.

Transmission of a message of ``size`` bytes occupies the link for
``size / bandwidth`` seconds (serialisation) and the message arrives
``delay`` seconds after serialisation completes.  Messages that would
overflow the transmit queue are dropped from the tail and reported to an
optional callback -- the event the DC ``resend()`` timeout recovers from
(section 4.2.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional, Tuple

from repro.events.types import LinkDelivered, LinkDropped, LinkTransmit
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.events.bus import Bus

__all__ = ["Link", "LinkStats"]

GBIT = 1e9 / 8  # bytes per second in one gigabit per second


@dataclass
class LinkStats:
    """Counters a link accumulates over its lifetime."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    bytes_dropped: int = 0
    busy_time: float = 0.0
    # queue high-water mark in bytes
    max_queue_bytes: int = field(default=0)


class Link:
    """A simplex link: FIFO transmit queue -> serialisation -> propagation.

    Parameters
    ----------
    sim:
        The event engine.
    bandwidth:
        Bytes per second (default 10 Gb/s, the paper's setup).
    delay:
        Propagation delay in seconds (default 350 us).
    queue_capacity:
        Transmit queue capacity in bytes; ``None`` means unbounded.
        A full queue drops new messages from the tail (DropTail).
    on_receive:
        Callback ``fn(message, size)`` invoked at the destination when a
        message fully arrives.
    on_drop:
        Optional callback ``fn(message, size)`` when DropTail discards.
    bus:
        Optional event bus; when a subscriber wants them, the link
        publishes :class:`LinkTransmit` / :class:`LinkDelivered` /
        :class:`LinkDropped` events (no cost otherwise).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = 10 * GBIT,
        delay: float = 350e-6,
        queue_capacity: Optional[int] = None,
        on_receive: Optional[Callable[[Any, int], None]] = None,
        on_drop: Optional[Callable[[Any, int], None]] = None,
        name: str = "link",
        bus: Optional["Bus"] = None,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.sim = sim
        self.bandwidth = bandwidth
        self.delay = delay
        self.queue_capacity = queue_capacity
        self.on_receive = on_receive
        self.on_drop = on_drop
        self.name = name
        self.bus = bus
        # Cached bus.wants() verdicts, refreshed when the bus version
        # moves -- one int compare per message instead of a method call.
        self._bus_version = -1
        self._wants_tx = False
        self._wants_rx = False
        self._wants_drop = False
        self.stats = LinkStats()
        self._queue: Deque[Tuple[Any, int]] = deque()
        self._queued_bytes = 0
        self._busy = False
        # when the in-progress serialisation frees the wire (valid while
        # ``_busy``); the fast-forward tolerance predicate uses it to
        # bound when current traffic drains
        self._busy_until = 0.0
        # the rotation fast-forward flight currently crossing this link,
        # if any (repro.core.fastforward); a competing send flushes it
        # back into real link state before queueing behind it
        self.ff_transit = None
        # messages serialising or propagating (popped from the queue but
        # not yet delivered); fault injection needs to see what is on the
        # wire to account for crash-time losses and ring-byte conservation
        self._in_flight: list[Tuple[Any, int]] = []

    # ------------------------------------------------------------------
    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the transmit queue."""
        return self._queued_bytes

    @property
    def queued_messages(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a message is being serialised onto the wire."""
        return self._busy

    @property
    def in_flight_bytes(self) -> int:
        """Bytes serialising or propagating (left the queue, not delivered)."""
        return sum(size for _, size in self._in_flight)

    def queued_items(self) -> list[Tuple[Any, int]]:
        """Snapshot of (message, size) pairs waiting in the transmit queue."""
        return list(self._queue)

    def in_flight_items(self) -> list[Tuple[Any, int]]:
        """Snapshot of (message, size) pairs currently on the wire."""
        return list(self._in_flight)

    def purge_queue(self) -> list[Tuple[Any, int]]:
        """Drop every queued message (crash semantics: the sender's memory
        is gone).  Messages already on the wire keep propagating.  Returns
        the purged (message, size) pairs so callers can account the loss;
        the DropTail counters and callback are deliberately not touched.
        """
        purged = list(self._queue)
        self._queue.clear()
        self._queued_bytes = 0
        return purged

    def _refresh_wants(self) -> None:
        bus = self.bus
        self._bus_version = bus.version
        self._wants_tx = bus.wants(LinkTransmit)
        self._wants_rx = bus.wants(LinkDelivered)
        self._wants_drop = bus.wants(LinkDropped)

    def transfer_time(self, size: int) -> float:
        """Serialisation + propagation time for an unqueued message."""
        return size / self.bandwidth + self.delay

    # ------------------------------------------------------------------
    def send(self, message: Any, size: int) -> bool:
        """Enqueue ``message`` of ``size`` bytes; False if DropTail dropped it."""
        ft = self.ff_transit
        if ft is not None:
            ft.touch(self, size)
        if size < 0:
            raise ValueError("message size cannot be negative")
        if (
            self.queue_capacity is not None
            and self._queued_bytes + size > self.queue_capacity
        ):
            self.stats.messages_dropped += 1
            self.stats.bytes_dropped += size
            bus = self.bus
            if bus is not None:
                if bus.version != self._bus_version:
                    self._refresh_wants()
                if self._wants_drop:
                    bus.publish(
                        LinkDropped(
                            self.sim.now, self.name, size, type(message).__name__
                        )
                    )
            if self.on_drop is not None:
                self.on_drop(message, size)
            return False
        self._queue.append((message, size))
        self._queued_bytes += size
        self.stats.max_queue_bytes = max(self.stats.max_queue_bytes, self._queued_bytes)
        if not self._busy:
            self._transmit_next()
        return True

    # ------------------------------------------------------------------
    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        message, size = self._queue.popleft()
        self._queued_bytes -= size
        self._in_flight.append((message, size))
        tx_time = size / self.bandwidth
        self._busy_until = self.sim.now + tx_time
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        self.stats.busy_time += tx_time
        bus = self.bus
        if bus is not None:
            if bus.version != self._bus_version:
                self._refresh_wants()
            if self._wants_tx:
                bus.publish(
                    LinkTransmit(self.sim.now, self.name, size, type(message).__name__)
                )
        # Serialisation finishes after tx_time; the wire is then free for
        # the next message while this one propagates for ``delay`` more.
        self.sim.post(tx_time, self._serialised, message, size)

    def _serialised(self, message: Any, size: int) -> None:
        self.sim.post(self.delay, self._deliver, message, size)
        self._transmit_next()

    def _deliver(self, message: Any, size: int) -> None:
        self._in_flight.remove((message, size))
        self.stats.messages_delivered += 1
        self.stats.bytes_delivered += size
        bus = self.bus
        if bus is not None:
            if bus.version != self._bus_version:
                self._refresh_wants()
            if self._wants_rx:
                bus.publish(
                    LinkDelivered(self.sim.now, self.name, size, type(message).__name__)
                )
        if self.on_receive is not None:
            self.on_receive(message, size)
