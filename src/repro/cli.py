"""Command-line interface: reproduce the paper's experiments.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig6 [--full]        # the LOIT sweep (Figures 6-7)
    python -m repro fig8 [--full]        # skewed workloads (Figure 8)
    python -m repro fig9 [--full]        # Gaussian access (Figure 9)
    python -m repro tab4 [--nodes 1 2 4] # TPC-H scaling (Table 4)
    python -m repro sweep [--sizes 5 10] # ring-size sweep (Figures 10-11)
    python -m repro fig1                 # the RDMA host cost model
    python -m repro chaos [--seeds 0 1]  # fault injection (docs/faults.md)
    python -m repro profile [--top 15]   # cProfile + event-stream attribution
    python -m repro multiring [--rings 4]           # federation (docs/multiring.md)
    python -m repro multiring --chaos gateway       # federated chaos scenarios
    python -m repro scenarios --all                 # SLO scenario suite (docs/workloads.md)
    python -m repro frontdoor                       # serving tier demo (docs/frontdoor.md)
    python -m repro stats                           # statistics catalog + accuracy

Each command prints the same rows/series the paper reports.  ``--full``
switches to the paper's exact parameters (slow; see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import List, Optional

from repro.core import DataCyclotron, DataCyclotronConfig, MB
from repro.metrics.report import render_distribution, render_series, render_table
from repro.net.hostmodel import HostCostModel, TransferMode
from repro.workloads.base import UniformDataset, populate_ring
from repro.workloads.gaussian import GaussianWorkload
from repro.workloads.skewed import SkewedWorkload, paper_phases
from repro.workloads.uniform import UniformWorkload
from repro.xtn.pulsating import RingSizeSweep

__all__ = ["main"]


# ----------------------------------------------------------------------
# shared scale handling
# ----------------------------------------------------------------------
def _uniform_setup(full: bool, seed: int):
    if full:
        dataset = UniformDataset(n_bats=1000, seed=seed)
        config = {"n_nodes": 10, "seed": seed}
        workload = {
            "n_nodes": 10, "queries_per_second": 80.0, "duration": 60.0,
            "min_bats": 1, "max_bats": 5, "min_proc_time": 0.1, "max_proc_time": 0.2,
        }
        max_time = 2000.0
    else:
        dataset = UniformDataset(n_bats=150, min_size=MB, max_size=2 * MB, seed=seed)
        config = {
            "n_nodes": 4, "bandwidth": 40 * MB, "bat_queue_capacity": 15 * MB,
            "resend_timeout": 5.0, "seed": seed,
        }
        workload = {
            "n_nodes": 4, "queries_per_second": 20.0, "duration": 10.0,
            "min_bats": 1, "max_bats": 3, "min_proc_time": 0.05, "max_proc_time": 0.1,
        }
        max_time = 600.0
    return dataset, config, workload, max_time


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_fig6(args: argparse.Namespace) -> int:
    levels = (
        [round(0.1 * i, 1) for i in range(1, 12)] if args.full else [0.1, 0.5, 1.1]
    )
    print(f"LOIT sweep over {levels} ({'paper' if args.full else 'quick'} scale)")
    for loit in levels:
        dataset, config, wl_kwargs, max_time = _uniform_setup(args.full, args.seed)
        dc = DataCyclotron(DataCyclotronConfig(loit_static=loit, **config))
        populate_ring(dc, dataset)
        workload = UniformWorkload(dataset, seed=args.seed, **wl_kwargs)
        total = workload.submit_to(dc)
        dc.run_until_done(max_time=max_time)
        lifetimes = dc.metrics.lifetimes()
        print(
            f"  LoiT {loit}: {dc.metrics.finished_count()}/{total} finished "
            f"by t={dc.now:.0f}s, mean life time "
            f"{statistics.mean(lifetimes):.2f}s, "
            f"peak ring load {dc.metrics.ring_bytes.maximum() / MB:.0f} MB"
        )
    return 0


def cmd_fig8(args: argparse.Namespace) -> int:
    if args.full:
        dataset = UniformDataset(n_bats=1000, seed=args.seed)
        config = DataCyclotronConfig(n_nodes=10, seed=args.seed)
        phases = paper_phases()
        workload = SkewedWorkload(dataset, phases, n_nodes=10, seed=args.seed)
        max_time = 2000.0
    else:
        dataset = UniformDataset(n_bats=200, min_size=MB, max_size=2 * MB, seed=args.seed)
        config = DataCyclotronConfig(
            n_nodes=4, bandwidth=40 * MB, bat_queue_capacity=15 * MB,
            resend_timeout=5.0, loit_adapt_interval=0.1, seed=args.seed,
        )
        phases = paper_phases(time_scale=0.2, rate_scale=0.15)
        workload = SkewedWorkload(
            dataset, phases, n_nodes=4, min_bats=1, max_bats=3,
            min_proc_time=0.05, max_proc_time=0.1, seed=args.seed,
        )
        max_time = 600.0
    dc = DataCyclotron(config)
    populate_ring(dc, dataset, tags=workload.bat_tags())
    total = workload.submit_to(dc)
    dc.run_until_done(max_time=max_time)
    end = phases[-1].end * 1.3
    metrics = dc.metrics
    times, series = metrics.ring_bytes.grid(end, step=end / 40)
    print(render_series("total MB", times, [b / 2**20 for b in series]))
    for tag in sorted(metrics.ring_bytes_by_tag):
        t, s = metrics.ring_bytes_by_tag[tag].grid(end, step=end / 40)
        print(render_series(f"{tag} MB", t, [b / 2**20 for b in s]))
    print(f"{metrics.finished_count()}/{total} queries finished; "
          f"{metrics.loit_changes} LOIT adjustments")
    return 0


def cmd_fig9(args: argparse.Namespace) -> int:
    dataset, config, wl_kwargs, max_time = _uniform_setup(args.full, args.seed)
    dc = DataCyclotron(DataCyclotronConfig(**config))
    populate_ring(dc, dataset)
    n = dataset.n_bats
    workload = GaussianWorkload(
        dataset, mean=n / 2, std=n / 20, seed=args.seed, **wl_kwargs
    )
    workload.submit_to(dc)
    dc.run_until_done(max_time=max_time)
    metrics = dc.metrics
    print(render_distribution(
        "touches", {b: float(s.pins) for b, s in metrics.bats.items()},
        key_range=(0, n - 1),
    ))
    print(render_distribution(
        "requests", {b: float(s.requests) for b, s in metrics.bats.items()},
        key_range=(0, n - 1),
    ))
    print(render_distribution(
        "loads", {b: float(s.loads) for b, s in metrics.bats.items()},
        key_range=(0, n - 1),
    ))
    return 0


def cmd_tab4(args: argparse.Namespace) -> int:
    from repro.workloads.tpch import TpchExperiment

    scale = 0.01 if args.full else 0.005
    queries = 1200 if args.full else 150
    print(f"calibrating TPC-H traces (SF {scale})...")
    # partition the tables so every scaled BAT fits a 200 MB queue
    rows_per_partition = 10_000 if args.full else None
    experiment = TpchExperiment(
        scale_factor=scale, seed=args.seed, rows_per_partition=rows_per_partition
    )
    rows = []
    single = experiment.run(args.nodes[0], queries_per_node=queries,
                            size_scale=args.size_scale,
                            transfer_mode=args.transfer_mode)
    if args.nodes[0] == 1:
        rows.append(experiment.monetdb_row(single))
    rows.append(single)
    rows.extend(experiment.run(n, queries_per_node=queries,
                               size_scale=args.size_scale,
                               transfer_mode=args.transfer_mode)
                for n in args.nodes[1:])
    print(render_table(
        ["#nodes", "exec(sec)", "throughput", "throughP/node", "CPU%"],
        [r.row() for r in rows],
        title="Table 4: TPC-H trace replay",
    ))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.full:
        sweep = RingSizeSweep(seed=args.seed)
    else:
        sweep = RingSizeSweep(
            n_bats=120, min_size=MB, max_size=2 * MB, total_rate=80.0,
            duration=10.0, min_proc_time=0.05, max_proc_time=0.10,
            bat_queue_capacity=10 * MB, seed=args.seed,
        )
    outcomes = sweep.run(sizes=tuple(args.sizes))
    print(render_table(
        ["#nodes", "cycle(ms)", "max req latency(s)", "max cycles", "finished"],
        [
            (o.n_nodes, round(o.mean_cycle_duration * 1e3, 1),
             round(o.peak_latency, 2), o.peak_cycles, o.finished)
            for o in outcomes
        ],
        title="Ring-size sweep (Figures 10 & 11)",
    ))
    return 0


def cmd_fig1(args: argparse.Namespace) -> int:
    model = HostCostModel(cpu_ghz=args.cpu_ghz)
    rows = []
    for mode in TransferMode:
        bd = model.breakdown(mode, args.gbps)
        rows.append((
            mode.value,
            round(100 * bd.data_copying, 1),
            round(100 * bd.context_switches, 1),
            round(100 * bd.driver, 1),
            round(100 * bd.network_stack, 1),
            round(100 * bd.total, 1),
        ))
    print(render_table(
        ["mode", "copy%", "ctx%", "drv%", "stack%", "total%"],
        rows,
        title=f"Figure 1: CPU load at {args.gbps} Gb/s on a {args.cpu_ghz} GHz host",
    ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.events.tracer import Tracer, read_jsonl, write_chrome

    if args.from_jsonl:
        # convert mode: JSONL capture -> Chrome trace, no simulation
        try:
            records = read_jsonl(args.from_jsonl)
            count = write_chrome(records, args.out)
        except (OSError, ValueError) as exc:
            print(f"repro trace: {exc}", file=sys.stderr)
            return 2
        print(f"converted {count} events -> {args.out}")
        return 0

    dataset, config, wl_kwargs, max_time = _uniform_setup(args.full, args.seed)
    dc = DataCyclotron(DataCyclotronConfig(**config))
    try:
        tracer = Tracer(jsonl_path=args.jsonl)
    except OSError as exc:
        print(f"repro trace: cannot open JSONL output: {exc}", file=sys.stderr)
        return 2
    tracer.attach(dc.bus)
    populate_ring(dc, dataset)
    workload = UniformWorkload(dataset, seed=args.seed, **wl_kwargs)
    total = workload.submit_to(dc)
    dc.run_until_done(max_time=max_time)
    tracer.close()
    try:
        count = tracer.to_chrome(args.out)
    except OSError as exc:
        print(f"repro trace: cannot write {args.out}: {exc}", file=sys.stderr)
        return 2
    print(
        f"{total} queries, {count} events -> {args.out}"
        + (f" (JSONL: {args.jsonl})" if args.jsonl else "")
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.faults import ChaosHarness, ChaosScenario

    scenario = None
    if args.scenario:
        try:
            with open(args.scenario) as fh:
                scenario = ChaosScenario.from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"repro chaos: bad scenario file: {exc}", file=sys.stderr)
            return 2
    if args.trace:
        try:
            os.makedirs(args.trace, exist_ok=True)
        except OSError as exc:
            print(f"repro chaos: cannot create trace dir: {exc}", file=sys.stderr)
            return 2
    failures = 0
    for seed in args.seeds:
        trace_path = (
            os.path.join(args.trace, f"chaos-seed{seed}.trace.json")
            if args.trace
            else None
        )
        try:
            harness = ChaosHarness(
                n_nodes=args.nodes,
                seed=seed,
                scenario=scenario,
                duration=args.duration,
                crashes=args.crashes,
                rejoin_fraction=args.rejoin_fraction,
                degradations=args.degradations,
                rehome_policy=args.rehome,
                resilience=args.resilience,
                replication=args.replication,
                trace=trace_path,
            )
        except ValueError as exc:
            print(f"repro chaos: invalid parameters: {exc}", file=sys.stderr)
            return 2
        harness.injector.arm()
        result = harness.run()
        print(result.report())
        if args.resilience:
            latencies = harness.dc.metrics.repair_latencies
            mean = sum(latencies) / len(latencies) if latencies else 0.0
            peak = max(latencies) if latencies else 0.0
            print(
                f"recovery: {len(latencies)} detector-driven repair(s), "
                f"mean latency {mean:.3f}s, max {peak:.3f}s"
            )
        if trace_path:
            print(f"trace: {trace_path}")
        if not result.ok:
            failures += 1
    return 1 if failures else 0


def cmd_multiring(args: argparse.Namespace) -> int:
    from repro.metrics.federation import render_federation_report
    from repro.multiring import MultiRingConfig, RingFederation
    from repro.multiring.chaos import run_multiring_chaos

    if args.chaos:
        failures = 0
        for result in run_multiring_chaos(
            scenario=args.chaos,
            seeds=args.seeds,
            resilience=args.resilience,
            n_rings=args.rings,
            nodes_per_ring=args.nodes_per_ring,
            duration=args.duration,
        ):
            print(result.report())
            if not result.ok:
                failures += 1
        return 1 if failures else 0

    # the demo run: the section 5.3 Gaussian workload over a federation
    base = DataCyclotronConfig(
        n_nodes=args.nodes_per_ring, bandwidth=40 * MB,
        bat_queue_capacity=10 * MB, seed=args.seed,
    )
    try:
        config = MultiRingConfig(
            base=base, n_rings=args.rings, nodes_per_ring=args.nodes_per_ring,
        )
    except ValueError as exc:
        print(f"repro multiring: invalid parameters: {exc}", file=sys.stderr)
        return 2
    fed = RingFederation(config)
    n_bats = 1000 if args.full else 120
    dataset = UniformDataset(
        n_bats=n_bats, min_size=MB, max_size=2 * MB, seed=args.seed
    )
    for bat_id, size in dataset.sizes.items():
        fed.add_bat(bat_id, size)
    workload = GaussianWorkload(
        dataset,
        n_nodes=fed.total_nodes,
        queries_per_second=(800.0 if args.full else 80.0) / fed.total_nodes,
        duration=60.0 if args.full else args.duration,
        mean=n_bats / 2, std=n_bats / 20,
        min_proc_time=0.05, max_proc_time=0.10,
        seed=args.seed,
    )
    total = workload.submit_to(fed)
    done = fed.run_until_done(max_time=2000.0 if args.full else 600.0)
    print(render_federation_report(fed))
    print(f"{fed.completed_queries}/{total} queries terminal by t={fed.sim.now:.0f}s")
    return 0 if done else 1


def _profile_per_ring(args: argparse.Namespace) -> int:
    """Per-ring attribution over the partitioned kernel (docs/parallel.md).

    Runs a 4-ring :class:`PartitionedFederation` with ``workers=1`` --
    the merged trace is bit-identical to any worker count, and a single
    process is what makes wall-clock attribution meaningful: every
    published event is charged the wall time since the previous event
    *anywhere*, so the table shows which ring partitions the kernel
    actually spends its time simulating (stragglers stand out) next to
    each ring's own events/sec.
    """
    import cProfile
    import pstats
    import random as _random
    import time as _time

    from repro.core.query import QuerySpec
    from repro.multiring import MultiRingConfig, PartitionedFederation

    n_rings = 4
    nodes = 8 if args.full else 4
    bats_per_ring = 8 if args.full else 4
    horizon = 8.0 if args.full else 3.0
    rate_per_ring = 30.0 if args.full else 20.0

    cfg = MultiRingConfig(
        base=DataCyclotronConfig(n_nodes=nodes, seed=args.seed, fast_forward=True),
        n_rings=n_rings,
        nodes_per_ring=nodes,
        splitmerge_interval=0.0,
        inter_ring_delay=0.002,
    )
    fed = PartitionedFederation(cfg, workers=1)
    n_bats = bats_per_ring * n_rings
    for bat_id in range(n_bats):
        fed.add_bat(bat_id, MB)

    counts = [0] * n_rings
    walls = [0.0] * n_rings
    last = [0.0]

    def observer(ring_id: int):
        def observe(_event) -> None:
            now = _time.perf_counter()
            counts[ring_id] += 1
            walls[ring_id] += now - last[0]
            last[0] = now
        return observe

    for part in fed.partitions:
        part.bus.subscribe_all(observer(part.ring_id))

    rng = _random.Random(args.seed)
    qid = 0
    specs = []
    for ring in range(n_rings):
        ring_bats = [b for b in range(n_bats) if b % n_rings == ring]
        other_bats = [b for b in range(n_bats) if b % n_rings != ring]
        t = 0.0
        while True:
            t += rng.expovariate(rate_per_ring)
            if t >= horizon:
                break
            qid += 1
            bats = [rng.choice(ring_bats)]
            if qid % 8 == 0:
                bats.append(rng.choice(other_bats))
            node = fed.global_node(ring, rng.randrange(nodes))
            specs.append(QuerySpec.simple(qid, node, t, bats, [0.002] * len(bats)))
    specs.sort(key=lambda s: (s.arrival, s.query_id))
    total = fed.submit_all(specs)

    profiler = cProfile.Profile()
    last[0] = _time.perf_counter()
    start = last[0]
    profiler.enable()
    done = fed.run_until_done(max_time=600.0)
    profiler.disable()
    wall = _time.perf_counter() - start

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)

    summary = fed.summary()
    attributed = sum(walls)
    rows = []
    for ring_summary in summary["rings"]:
        ring_id = ring_summary["ring"]
        ring_wall = walls[ring_id]
        events = ring_summary["events_processed"]
        rows.append((
            ring_id,
            ring_summary["completed"],
            ring_summary["fetches_served"],
            events,
            round(events / ring_wall) if ring_wall else 0,
            round(ring_wall * 1e3, 1),
            round(100.0 * ring_wall / attributed, 1) if attributed else 0.0,
        ))
    print(render_table(
        ["ring", "queries", "serves", "events", "events/sec", "wall(ms)",
         "share%"],
        rows,
        title="Per-ring attribution: wall time charged to the publishing ring",
    ))
    print(
        f"{total} queries ({summary['completed']} terminal, done={done}), "
        f"{summary['events_processed']} events in {wall:.2f}s wall "
        f"({summary['events_processed'] / wall:,.0f} aggregate events/sec "
        f"under instrumentation); {summary['kernel_rounds']} kernel rounds, "
        f"{summary['kernel_messages']} cross-ring messages, "
        f"lookahead {fed.kernel.lookahead}s"
    )
    return 0 if done else 1


def cmd_profile(args: argparse.Namespace) -> int:
    """Run the section 5.1 workload under cProfile + bus attribution.

    Two views of the same run: the cProfile table says where the *host*
    CPU goes (engine dispatch, link maths, catalog probes), and the bus
    attribution table says which *event streams* dominate -- each
    published event is charged the wall time since the previous one, so
    high-frequency per-hop streams surface even when every single
    handler is cheap.  The wildcard observer pins the classic rotation
    path (fast-forwarding disables lazy coalescing under full
    observation), which is exactly what a per-hop profile needs.
    """
    if args.per_ring:
        return _profile_per_ring(args)

    import cProfile
    import pstats
    import time as _time

    dataset, config, wl_kwargs, max_time = _uniform_setup(args.full, args.seed)
    dc = DataCyclotron(DataCyclotronConfig(**config))

    counts: dict = {}
    walls: dict = {}
    last = [0.0]

    def observe(event) -> None:
        now = _time.perf_counter()
        name = type(event).__name__
        counts[name] = counts.get(name, 0) + 1
        walls[name] = walls.get(name, 0.0) + (now - last[0])
        last[0] = now

    dc.bus.subscribe_all(observe)
    populate_ring(dc, dataset)
    workload = UniformWorkload(dataset, seed=args.seed, **wl_kwargs)
    total = workload.submit_to(dc)

    profiler = cProfile.Profile()
    last[0] = _time.perf_counter()
    start = last[0]
    profiler.enable()
    dc.run_until_done(max_time=max_time)
    profiler.disable()
    wall = _time.perf_counter() - start

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)

    attributed = sum(walls.values())
    rows = [
        (
            name,
            counts[name],
            round(walls[name] * 1e3, 1),
            round(100.0 * walls[name] / attributed, 1) if attributed else 0.0,
        )
        for name in sorted(counts, key=lambda k: walls[k], reverse=True)[:args.top]
    ]
    print(render_table(
        ["event type", "count", "wall(ms)", "share%"],
        rows,
        title="Bus attribution: wall time charged to the publishing stream",
    ))
    print(
        f"{total} queries, {dc.sim.processed} events in {wall:.2f}s wall "
        f"({dc.sim.processed / wall:,.0f} events/sec under instrumentation); "
        f"{sum(counts.values())} bus events "
        f"({attributed / wall * 100:.0f}% of wall attributed)"
    )
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from repro.workloads.suite import SCENARIOS, run_scenario, scenario_names

    if args.list:
        for name, spec in SCENARIOS.items():
            print(f"  {name:<15} {spec.description}")
        return 0
    names = args.scenarios if args.scenarios and not args.all else scenario_names()
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(
            f"repro scenarios: unknown scenario(s) {', '.join(unknown)}; "
            f"pick from {', '.join(scenario_names())}",
            file=sys.stderr,
        )
        return 2
    quick = not args.full
    payload = {"quick": quick, "seeds": args.seeds, "scenarios": {n: [] for n in names}}
    rows = []
    for name in names:
        for seed in args.seeds:
            try:
                result = run_scenario(name, seed, quick=quick)
                if args.check_determinism and run_scenario(name, seed, quick=quick) != result:
                    print(
                        f"repro scenarios: {name} seed {seed} is nondeterministic",
                        file=sys.stderr,
                    )
                    return 1
            except ValueError as exc:  # validate_verdict schema failure
                print(f"repro scenarios: {name} seed {seed}: {exc}", file=sys.stderr)
                return 1
            payload["scenarios"][name].append(result)
            v = result["verdict"]
            rows.append((
                name, seed,
                v["latency"]["p50"], v["latency"]["p99"], v["latency"]["p999"],
                v["failed"], "ok" if v["ok"] else "MISS",
            ))
            extras = result["extras"]
            if "p999_handoff_off" in extras:
                print(
                    f"  {name} seed {seed}: p999 {extras['p999_handoff_on']}s with "
                    f"serve handoff vs {extras['p999_handoff_off']}s without "
                    f"({extras['serves_handed_off']} serve(s) handed off)"
                )
            if "p999_estimate_off" in extras:
                print(
                    f"  {name} seed {seed}: p999 {extras['p999_estimate_on']}s "
                    f"with estimate-driven admission vs "
                    f"{extras['p999_estimate_off']}s blind"
                    + (
                        f"; protected goodput {extras['goodput_on']}/s vs "
                        f"{extras['goodput_off']}/s"
                        if "goodput_on" in extras else ""
                    )
                )
            if "p999_controller_off" in extras:
                line = (
                    f"  {name} seed {seed}: p999 {extras['p999_controller_on']}s "
                    f"with overload controller vs "
                    f"{extras['p999_controller_off']}s without; protected "
                    f"goodput {extras['goodput_on']}/s vs "
                    f"{extras['goodput_off']}/s"
                )
                if "ring_splits_on" in extras:
                    line += (
                        f"; splits {extras['ring_splits_on']} vs "
                        f"{extras['ring_splits_off']}"
                    )
                print(line)
            for engine, section in v.get("engine_classes", {}).items():
                gates = ", ".join(
                    f"{gate}={'ok' if passed else 'MISS'}"
                    for gate, passed in section["passed"].items()
                )
                print(
                    f"  {name} seed {seed} [{engine}]: p99 {section['p99']}s, "
                    f"{section['throughput']}/s over {section['queries']} "
                    f"queries ({gates})"
                )
    print(render_table(
        ["scenario", "seed", "p50(s)", "p99(s)", "p999(s)", "failed", "SLO"],
        rows,
        title=f"scenario suite ({'quick' if quick else 'full'} scale)",
    ))
    if args.out:
        try:
            with open(args.out, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"repro scenarios: cannot write {args.out}: {exc}", file=sys.stderr)
            return 2
        print(f"written: {args.out}")
    return 0


def cmd_frontdoor(args: argparse.Namespace) -> int:
    """Run the front-door serving-tier demo (docs/frontdoor.md).

    One seed of the ``frontdoor`` scenario: the statistics-driven
    admission valve against its blind byte-valve twin, with the
    per-tier door ledger and the estimator accuracy for both runs.
    """
    from repro.workloads.suite import run_scenario

    result = run_scenario("frontdoor", args.seed, quick=not args.full)
    verdict, extras = result["verdict"], result["extras"]
    print(
        f"offered {extras['offered']} queries at "
        f"{extras['capacity_ratio_burst']}x ring capacity in the burst "
        f"window ({extras['capacity_ratio_base']}x outside it)"
    )
    rows = []
    for mode in ("on", "off"):
        summary = extras[f"estimate_{mode}"]
        door = summary["door"]
        for tier, tally in sorted(door["by_tier"].items(), reverse=True):
            rows.append((
                "estimate" if mode == "on" else "blind", f"tier{tier}",
                tally["offered"], tally["admitted"], tally["rejected"],
                tally["shed_downstream"], tally["finished"], tally["good"],
            ))
    print(render_table(
        ["admission", "tier", "offered", "admitted", "rejected",
         "shed-downstream", "finished", "good"],
        rows,
        title="front door: statistics-driven admission vs blind byte valve",
    ))
    print(
        f"admitted p999: {extras['p999_estimate_on']}s estimate-driven vs "
        f"{extras['p999_estimate_off']}s blind; protected-tier goodput "
        f"{extras['goodput_on']}/s vs {extras['goodput_off']}/s"
    )
    print(
        f"estimates recorded: {extras['estimate_on']['estimates_recorded']} "
        f"({extras['estimate_on']['exact_bytes_fraction']:.3f} byte-exact)"
    )
    print(f"SLO: {'ok' if verdict['ok'] else 'MISS'}")
    return 0 if verdict["ok"] else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Print the statistics catalog and the estimator accuracy report.

    Loads the front-door workload table, dumps the per-column catalog
    the :class:`~repro.dbms.statistics.QueryEstimator` prices against,
    then replays the workload through a :class:`~repro.frontdoor.FrontDoor`
    and reports predicted-vs-actual footprint accuracy per query class.
    """
    from repro.dbms.executor import RingDatabase
    from repro.frontdoor import FrontDoor, FrontDoorPolicy
    from repro.workloads.frontdoor import FrontDoorWorkload

    wl = FrontDoorWorkload(seed=args.seed)
    rdb = RingDatabase(
        DataCyclotronConfig(
            n_nodes=wl.n_nodes, bandwidth=3 * MB, seed=args.seed,
            fast_forward=False,
        ),
        lifecycle_events=True,
    )
    wl.load_into(rdb)
    door = FrontDoor(rdb, policy=FrontDoorPolicy(
        tier_boundaries=(16 * 1024, 120 * 1024),
        byte_budget=int(1.5 * MB), admission="estimate",
    ))

    rows = []
    for table in door.stats.tables():
        for col in table.columns.values():
            hist = col.histogram
            rows.append((
                f"{table.schema}.{table.name}", col.column, col.n_rows,
                col.n_partitions, col.total_bytes, col.n_distinct,
                col.vmin if col.numeric else "-",
                col.vmax if col.numeric else "-",
                len(hist.edges) - 1 if hist is not None else 0,
            ))
    print(render_table(
        ["table", "column", "rows", "parts", "bytes", "distinct",
         "min", "max", "buckets"],
        rows,
        title="statistics catalog (equi-depth histograms + distinct sketches)",
    ))

    wl.offer_to(door)
    rdb.run_until_done(max_time=600.0)
    acc = door.accuracy_report()
    rows = [
        (
            cls,
            rep["queries"],
            f"{rep['exact_bytes_fraction']:.3f}",
            f"{rep['mean_bytes_ratio']:.3f}",
            f"{rep['mean_abs_rel_error']:.3f}",
            rep["predicted_bytes"],
            rep["actual_bytes"],
            f"{rep['mean_service_time']:.4f}",
        )
        for cls, rep in sorted(acc.items())
    ]
    print(render_table(
        ["query class", "queries", "exact", "bytes ratio", "abs rel err",
         "predicted B", "actual B", "mean svc(s)"],
        rows,
        title="predicted-vs-actual accuracy (the estimator feedback loop)",
    ))
    summary = door.summary()
    print(
        f"admitted {summary['admitted']}/{summary['offered']} "
        f"(rejected by cause: {summary['rejected_by_cause']})"
    )
    return 0


def cmd_shell(args: argparse.Namespace) -> int:
    from repro.shell import run_shell

    return run_shell(sys.stdin, sys.stdout, n_nodes=args.nodes, seed=args.seed)


def cmd_list(args: argparse.Namespace) -> int:
    for name, (_fn, help_text) in sorted(_COMMANDS.items()):
        print(f"  {name:<6} {help_text}")
    return 0


_COMMANDS = {
    "fig1": (cmd_fig1, "RDMA host CPU-cost breakdown (Figure 1)"),
    "fig6": (cmd_fig6, "LOIT sweep: throughput & life time (Figures 6-7)"),
    "fig8": (cmd_fig8, "skewed workloads SW1..SW4 (Figure 8)"),
    "fig9": (cmd_fig9, "Gaussian access pattern (Figure 9)"),
    "tab4": (cmd_tab4, "TPC-H trace replay scaling (Table 4)"),
    "sweep": (cmd_sweep, "ring-size sweep (Figures 10-11)"),
    "chaos": (cmd_chaos, "fault injection: crashes, rejoins, link faults"),
    "multiring": (cmd_multiring, "multi-ring federation (docs/multiring.md)"),
    "trace": (cmd_trace, "capture an event trace (JSONL / Chrome trace_event)"),
    "profile": (cmd_profile, "cProfile + per-event-stream attribution "
                             "(docs/performance.md)"),
    "scenarios": (cmd_scenarios, "production-shaped SLO scenario suite "
                                 "(docs/workloads.md)"),
    "frontdoor": (cmd_frontdoor, "statistics-driven admission vs blind "
                                 "byte valve (docs/frontdoor.md)"),
    "stats": (cmd_stats, "statistics catalog + estimator accuracy report"),
    "shell": (cmd_shell, "interactive SQL over a simulated ring"),
    "list": (cmd_list, "list available experiments"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Data Cyclotron experiments (EDBT 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, (fn, help_text) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(fn=fn)
        p.add_argument("--full", action="store_true",
                       help="paper-scale parameters (slow)")
        p.add_argument("--seed", type=int, default=7)
        if name == "tab4":
            p.add_argument("--nodes", type=int, nargs="+",
                           default=[1, 2, 3, 4, 6, 8])
            p.add_argument("--size-scale", type=float, default=200.0,
                           dest="size_scale")
            p.add_argument("--transfer-mode", default="rdma",
                           choices=("rdma", "offload", "legacy"),
                           dest="transfer_mode")
        if name == "sweep":
            p.add_argument("--sizes", type=int, nargs="+", default=[3, 6, 9])
        if name == "shell":
            p.add_argument("--nodes", type=int, default=4)
        if name == "chaos":
            p.add_argument("--nodes", type=int, default=6)
            p.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
            p.add_argument("--duration", type=float, default=6.0)
            p.add_argument("--crashes", type=int, default=1)
            p.add_argument("--rejoin-fraction", type=float, default=1.0,
                           dest="rejoin_fraction")
            p.add_argument("--degradations", type=int, default=0)
            p.add_argument("--rehome", default="fail_fast",
                           choices=("fail_fast", "successor"))
            p.add_argument("--resilience", action="store_true",
                           help="heartbeat detector + query retry + "
                                "K-replica re-homing (docs/resilience.md)")
            p.add_argument("--replication", type=int, default=2,
                           help="replica count K with --resilience")
            p.add_argument("--scenario", default=None,
                           help="JSON scenario file (overrides --crashes etc.)")
            p.add_argument("--trace", default=None, metavar="DIR",
                           help="write chaos-seed<N>.trace.json per seed")
        if name == "multiring":
            p.add_argument("--rings", type=int, default=4)
            p.add_argument("--nodes-per-ring", type=int, default=4,
                           dest="nodes_per_ring")
            p.add_argument("--duration", type=float, default=10.0)
            p.add_argument("--chaos", default=None,
                           choices=("gateway", "migration"),
                           help="run a federated chaos scenario instead "
                                "of the Gaussian demo")
            p.add_argument("--seeds", type=int, nargs="+", default=[0],
                           help="chaos seeds (with --chaos)")
            p.add_argument("--resilience", action="store_true",
                           help="per-ring detector + federated retry "
                                "(with --chaos)")
        if name == "scenarios":
            p.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                           help="scenario names (default: all)")
            p.add_argument("--all", action="store_true",
                           help="run every scenario")
            p.add_argument("--list", action="store_true",
                           help="list scenarios and exit")
            p.add_argument("--seeds", type=int, nargs="+", default=[0])
            p.add_argument("--check-determinism", action="store_true",
                           dest="check_determinism",
                           help="run each scenario twice, fail on drift")
            p.add_argument("--out", default="BENCH_slo.json",
                           help="JSON report path ('' disables)")
        if name == "trace":
            p.add_argument("--out", default="repro.trace.json",
                           help="Chrome trace_event output file")
            p.add_argument("--jsonl", default=None,
                           help="also stream raw records to this JSONL file")
            p.add_argument("--from-jsonl", default=None, dest="from_jsonl",
                           metavar="FILE",
                           help="convert an existing JSONL capture instead "
                                "of running a simulation")
        if name == "profile":
            p.add_argument("--top", type=int, default=15,
                           help="rows per table")
            p.add_argument("--sort", default="cumulative",
                           choices=("cumulative", "tottime", "ncalls"),
                           help="cProfile sort key")
            p.add_argument("--per-ring", action="store_true", dest="per_ring",
                           help="profile the partitioned kernel instead: "
                                "wall seconds and events/sec per ring "
                                "(docs/parallel.md)")
        if name == "fig1":
            p.add_argument("--gbps", type=float, default=10.0)
            p.add_argument("--cpu-ghz", type=float, default=2.33 * 4,
                           dest="cpu_ghz")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
