"""Intra-query parallelism: splitting queries over disjoint data subsets.

Paper section 6.1: "the Data Cyclotron architecture allows for highly
efficient shared-nothing intra-query parallelism.  During the nomadic
phase, a query can be split into independent sub-queries to consume
disjoint data subsets. ... All sub-queries are then processed
concurrently, each settling on a different node following the basic
procedures of a normal query.  The individual intermediate results are
combined to form the final query result."
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.query import PinStep, QuerySpec
from repro.core.ring import DataCyclotron
from repro.sim.process import Process, all_of

__all__ = ["split_query", "combine_results", "submit_parallel"]


def split_query(
    spec: QuerySpec,
    n_subqueries: int,
    nodes: Optional[List[int]] = None,
    id_stride: int = 1_000_000,
) -> List[QuerySpec]:
    """Split a query into up to ``n_subqueries`` over disjoint pin steps.

    Steps are dealt round-robin so each sub-query consumes a disjoint
    BAT subset; sub-query *i* runs on ``nodes[i]`` (default: the parent's
    node and its successors).  Sub-query ids are derived from the parent
    (``parent_id * id_stride + i``) so metrics stay traceable.
    """
    if n_subqueries < 1:
        raise ValueError("need at least one sub-query")
    n_subqueries = min(n_subqueries, len(spec.steps))
    groups: List[List[PinStep]] = [[] for _ in range(n_subqueries)]
    for i, step in enumerate(spec.steps):
        groups[i % n_subqueries].append(step)
    subs: List[QuerySpec] = []
    for i, steps in enumerate(groups):
        node = nodes[i] if nodes else spec.node
        # The first step of a sub-query starts immediately: its original
        # op_time belonged to a step now in another sub-query.
        adjusted = [
            PinStep(bat_id=s.bat_id, op_time=(0.0 if j == 0 else s.op_time))
            for j, s in enumerate(steps)
        ]
        subs.append(
            QuerySpec(
                query_id=spec.query_id * id_stride + i,
                node=node,
                arrival=spec.arrival,
                steps=adjusted,
                tail_time=steps[-1].op_time if steps else spec.tail_time,
                tag=f"{spec.tag}/sub{i}" if spec.tag else f"sub{i}",
            )
        )
    return subs


def combine_results(sub_lifetimes: List[float], merge_cost: float = 0.0) -> float:
    """The parent query's lifetime: the slowest sub-query plus the merge."""
    if not sub_lifetimes:
        raise ValueError("no sub-queries to combine")
    return max(sub_lifetimes) + merge_cost


def submit_parallel(
    dc: DataCyclotron,
    spec: QuerySpec,
    n_subqueries: int,
    merge_cost: float = 0.0,
    on_done: Optional[Callable[[float], None]] = None,
) -> List[QuerySpec]:
    """Split, spread over successive nodes, submit, and watch completion.

    Returns the submitted sub-specs.  When every sub-query finishes, the
    optional ``on_done`` callback receives the combined completion time
    (after ``merge_cost`` of result combination).
    """
    nodes = [
        (spec.node + i) % dc.config.n_nodes for i in range(n_subqueries)
    ]
    subs = split_query(spec, n_subqueries, nodes=nodes)
    processes: List[Process] = [dc.submit(sub) for sub in subs]
    if on_done is not None:

        def watcher():
            joined = all_of(dc.sim, [p.join() for p in processes])
            yield joined
            done_at = dc.sim.now + merge_cost
            on_done(done_at)

        Process(dc.sim, watcher())
    return subs
