"""Multi-version updates with the "updating" tag protocol (section 6.4).

"An update query searches for a controlling node N to settle and waits
for relevant BATs to pass by.  The only difference is that when a node N
processes an update request, for a BAT f, it propagates f with a tag:
'updating'.  This way, any concurrent updates, waiting in the rest of
the ring, refrain from processing f, recognizing its stale state; they
have to wait for the new version. ... Read-only queries that do not
necessarily require the latest updated version can continue using the
flowing old version."

The :class:`UpdateCoordinator` realises this: update requests settle on
a controlling node, serialise per BAT (concurrent updaters queue for the
in-flight one, the "sent directly to N" alternative), apply their write
cost, and bump the owner's catalog version.  The stale copy keeps
serving relaxed readers until it next passes its owner, which retires it
and circulates the new version (see the version check in
:meth:`repro.core.runtime.NodeRuntime._hot_set_management`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.ring import DataCyclotron
from repro.core.runtime import PinResult
from repro.sim.process import Delay, Future, Process

__all__ = ["UpdateRequest", "UpdateCoordinator"]

_UPDATE_QID_BASE = 2_000_000_000


@dataclass
class UpdateRequest:
    """Lifecycle of one update query."""

    update_id: int
    bat_id: int
    node: int                     # the controlling node N
    apply_time: float
    submitted_at: float
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    new_version: Optional[int] = None
    waited_for_lock: bool = False

    @property
    def done(self) -> bool:
        return self.completed_at is not None


class UpdateCoordinator:
    """Serialises updates per BAT and publishes new versions."""

    def __init__(self, dc: DataCyclotron, mutate: Optional[Callable[[int, Any], Any]] = None):
        """``mutate(bat_id, payload) -> new_payload`` transforms the
        owner's disk payload in functional mode; omit for size-only
        simulations."""
        self.dc = dc
        self.mutate = mutate
        self._next_id = 0
        # the "updating" tag: BAT id -> queue of waiting update futures
        self._locks: Dict[int, List[Future]] = {}
        self.requests: List[UpdateRequest] = []

    # ------------------------------------------------------------------
    def is_updating(self, bat_id: int) -> bool:
        """True while an update for this BAT is in flight (the tag)."""
        return bat_id in self._locks

    def current_version(self, bat_id: int) -> int:
        owner = self.dc.bat_owner(bat_id)
        return self.dc.nodes[owner].s1.get(bat_id).version

    # ------------------------------------------------------------------
    def submit_update(
        self, bat_id: int, node: int, apply_time: float, arrival: float = 0.0
    ) -> UpdateRequest:
        """Schedule an update query; returns its tracking record."""
        if apply_time < 0:
            raise ValueError("apply_time cannot be negative")
        update = UpdateRequest(
            update_id=self._next_id,
            bat_id=bat_id,
            node=node,
            apply_time=apply_time,
            submitted_at=arrival,
        )
        self._next_id += 1
        self.requests.append(update)
        delay = arrival - self.dc.sim.now
        if delay < 0:
            raise ValueError("arrival is in the past")
        self.dc._submitted += 1
        Process(self.dc.sim, self._update_process(update), start_delay=delay)
        return update

    def _update_process(self, update: UpdateRequest) -> Generator:
        runtime = self.dc.nodes[update.node]
        sim = self.dc.sim
        query_id = _UPDATE_QID_BASE + update.update_id
        self.dc.metrics.query_registered(sim.now, query_id, update.node, tag="update")

        # Respect the "updating" tag: concurrent updates wait for the
        # in-flight one instead of processing the stale version.
        while update.bat_id in self._locks:
            update.waited_for_lock = True
            gate = Future(sim)
            self._locks[update.bat_id].append(gate)
            yield gate
        self._locks[update.bat_id] = []
        update.started_at = sim.now

        try:
            # settle and wait for the BAT to pass by, like any query
            runtime.request(query_id, [update.bat_id])
            pin = runtime.pin(query_id, update.bat_id)
            yield pin
            result: PinResult = pin.value
            if not result.ok:
                runtime.finish_query(query_id, failed=True, error=result.error or "")
                update.completed_at = sim.now
                return
            # apply the write
            if update.apply_time > 0:
                yield runtime.exec_op(update.apply_time)
            # publish the new version at the owner
            owner = self.dc.nodes[self.dc.bat_owner(update.bat_id)]
            entry = owner.s1.get(update.bat_id)
            entry.version += 1
            if self.mutate is not None:
                old = owner.loader.payloads.get(update.bat_id)
                owner.loader.payloads[update.bat_id] = self.mutate(
                    update.bat_id, old
                )
            update.new_version = entry.version
            runtime.unpin(query_id, update.bat_id)
            runtime.finish_query(query_id)
            update.completed_at = sim.now
        finally:
            waiters = self._locks.pop(update.bat_id, [])
            for gate in waiters:
                gate.resolve(None)

    # ------------------------------------------------------------------
    def read_latest(
        self, node: int, query_id: int, bat_id: int, min_version: int
    ) -> Generator:
        """A strict reader: re-pins until it sees ``min_version``.

        Relaxed readers just use the normal ``pin()`` -- they accept the
        flowing old version, as the paper allows.
        """
        runtime = self.dc.nodes[node]
        while True:
            runtime.request(query_id, [bat_id])
            pin = runtime.pin(query_id, bat_id)
            yield pin
            result: PinResult = pin.value
            if not result.ok:
                return result
            if result.version >= min_version:
                return result
            # stale: release and wait roughly one rotation before trying
            # again (also avoids a zero-time spin on a cached stale copy)
            runtime.unpin(query_id, bat_id)
            yield Delay(runtime.loss_timeout / 2)
