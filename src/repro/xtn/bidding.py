"""Nomadic query placement via cost bids (paper section 6.1).

"Once the BAT requests are sent off, a query can start with a nomadic
phase, 'chasing' the data requests upstream to find a more satisfactory
node to settle for its execution.  At each node visited, we ask for a
bid to execute the query locally.  The price is the result of a
heuristic cost model for solving the query, based on its data needs and
the node's current workload."

:class:`BidScheduler` implements that heuristic: each node quotes a
price combining its current load (outstanding queries) with the data
cost of serving the query's BATs there (bytes owned elsewhere weighted
by ring distance from the owner).  The query settles on the cheapest
node; the nomadic hop itself costs one request-channel traversal per
visited node, charged to the query's arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.core.query import QuerySpec
from repro.core.ring import DataCyclotron

__all__ = ["NodeBid", "BidScheduler"]


@dataclass(frozen=True)
class NodeBid:
    """One node's quote for executing a query."""

    node: int
    load_cost: float
    data_cost: float

    @property
    def price(self) -> float:
        return self.load_cost + self.data_cost


class BidScheduler:
    """Places queries on the cheapest-bidding node.

    Parameters
    ----------
    load_weight:
        Seconds of price per outstanding query at the node.
    data_weight:
        Seconds of price per byte-hop of remote data (a BAT owned
        ``h`` clockwise hops away contributes ``size * h * data_weight``
        -- data arrives faster when the owner is just upstream).
    """

    def __init__(
        self,
        dc: DataCyclotron,
        load_weight: float = 0.05,
        data_weight: float = 1e-9,
    ):
        self.dc = dc
        self.load_weight = load_weight
        self.data_weight = data_weight
        self._outstanding: Dict[int, int] = {n: 0 for n in range(dc.config.n_nodes)}
        self.placements: Dict[int, int] = {}  # query_id -> chosen node

    # ------------------------------------------------------------------
    def bid(self, node: int, spec: QuerySpec) -> NodeBid:
        """The node's quote: its workload plus the query's data needs."""
        load_cost = self._outstanding[node] * self.load_weight
        data_cost = 0.0
        for bat_id in spec.bat_ids:
            if not self.dc.has_bat(bat_id):
                # a federated query quotes only the data homed on this
                # ring; the cross-ring router fetches the rest either way
                continue
            owner = self.dc.bat_owner(bat_id)
            if owner == node:
                continue  # local disk access: no ring traffic
            hops = self.dc.ring.hops_clockwise(owner, node)
            data_cost += self.dc.bat_size(bat_id) * hops * self.data_weight
        return NodeBid(node=node, load_cost=load_cost, data_cost=data_cost)

    def collect_bids(self, spec: QuerySpec) -> List[NodeBid]:
        return [self.bid(n, spec) for n in range(self.dc.config.n_nodes)]

    def place(self, spec: QuerySpec) -> QuerySpec:
        """The nomadic phase: pick the cheapest node, charge the travel.

        The query visits nodes upstream (anti-clockwise) from its entry
        node until it has seen every node; settling ``k`` hops away
        delays its start by ``k`` request-channel traversals.
        """
        bids = self.collect_bids(spec)
        best = min(bids, key=lambda b: (b.price, b.node))
        hops = self.dc.ring.hops_anticlockwise(spec.node, best.node)
        travel = hops * self.dc.config.link_delay
        self._outstanding[best.node] += 1
        self.placements[spec.query_id] = best.node
        return replace(
            spec, node=best.node, arrival=spec.arrival + travel
        )

    def place_at(self, spec: QuerySpec, node: int, extra_travel: float = 0.0) -> QuerySpec:
        """Settle ``spec`` on a node chosen by an outside arbiter.

        The multiring router uses this after shipping a query across an
        inter-ring link: the target node was picked from this ring's own
        bids, but the travel charge includes the inter-ring hop, which
        only the federation knows.  Keeps the same load bookkeeping as
        :meth:`place`.
        """
        self._outstanding[node] += 1
        self.placements[spec.query_id] = node
        return replace(spec, node=node, arrival=spec.arrival + extra_travel)

    def query_finished(self, spec_or_node) -> None:
        """Feed back completions so load costs stay current."""
        node = spec_or_node.node if isinstance(spec_or_node, QuerySpec) else spec_or_node
        if self._outstanding.get(node, 0) > 0:
            self._outstanding[node] -= 1

    # ------------------------------------------------------------------
    def place_split(
        self,
        spec: QuerySpec,
        max_subqueries: int = 4,
        split_threshold: float = 0.0,
        merge_cost: float = 0.0,
        on_done=None,
    ) -> List[QuerySpec]:
        """The full section 6.1 nomadic phase: bid, maybe split, settle.

        "During the nomadic phase, a query can be split into independent
        sub-queries to consume disjoint data subsets.  The number of
        sub-queries depend on the price attached dynamically."  If the
        cheapest bid exceeds ``split_threshold`` (every node is loaded or
        the data is spread far), the query splits into up to
        ``max_subqueries`` sub-queries, each placed by its own bids;
        otherwise it settles whole on the winning node.

        Submits the placed specs and returns them.  ``on_done`` receives
        the combined completion time once every piece finished.
        """
        from repro.sim.process import Process, all_of
        from repro.xtn.parallel import split_query

        best = min(self.collect_bids(spec), key=lambda b: (b.price, b.node))
        if best.price <= split_threshold or len(spec.steps) < 2:
            placed = [self.place(spec)]
        else:
            n_subqueries = min(max_subqueries, len(spec.steps))
            placed = [self.place(sub) for sub in split_query(spec, n_subqueries)]
        processes = [self.dc.submit(p) for p in placed]
        if on_done is not None:

            def watcher():
                joined = all_of(self.dc.sim, [proc.join() for proc in processes])
                yield joined
                on_done(self.dc.sim.now + merge_cost)

            Process(self.dc.sim, watcher())
        return placed

    def submit_placed(self, specs) -> int:
        """Place and submit a whole workload; returns the count."""
        count = 0
        for spec in specs:
            self.dc.submit(self.place(spec))
            count += 1
        return count

    def placement_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {n: 0 for n in range(self.dc.config.n_nodes)}
        for node in self.placements.values():
            counts[node] += 1
        return counts
