"""Future-work features of the paper's section 6, as library extensions.

* :mod:`repro.xtn.bidding` -- nomadic query placement via cost bids
  (section 6.1, "Query Processing"),
* :mod:`repro.xtn.parallel` -- intra-query parallelism: splitting a
  query into sub-queries over disjoint data subsets (section 6.1),
* :mod:`repro.xtn.result_cache` -- intermediate results circulating as
  first-class ring citizens (section 6.2),
* :mod:`repro.xtn.pulsating` -- pulsating rings: size adaptation and the
  section 6.3 ring-size sweep behind Figures 10 and 11,
* :mod:`repro.xtn.updates` -- multi-version updates with the "updating"
  tag protocol (section 6.4).
"""

from repro.xtn.bidding import BidScheduler, NodeBid
from repro.xtn.parallel import combine_results, split_query
from repro.xtn.pulsating import (
    EpochReport,
    PulsatingController,
    PulsatingRing,
    RingSizeSweep,
    SweepOutcome,
)
from repro.xtn.result_cache import CachedResult, ResultCache
from repro.xtn.updates import UpdateCoordinator, UpdateRequest

__all__ = [
    "BidScheduler",
    "CachedResult",
    "EpochReport",
    "NodeBid",
    "PulsatingController",
    "PulsatingRing",
    "ResultCache",
    "RingSizeSweep",
    "SweepOutcome",
    "UpdateCoordinator",
    "UpdateRequest",
    "combine_results",
    "split_query",
]
