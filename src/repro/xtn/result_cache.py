"""Intermediate results as first-class ring citizens (paper section 6.2).

"Multi-query processing can be boosted by reusing (intermediate) query
results ... they are simply treated as persistent data and pushed into
the storage ring for queries being interested.  Like base data,
intermediate results are characterized by their age and their popularity
on the ring.  They only keep flowing as long as there is interest."

A :class:`ResultCache` keys intermediates by a caller-chosen fingerprint
(e.g. a canonicalised plan fragment).  ``publish`` registers the result
as a new BAT owned by its creator node; once published, any node can
``request``/``pin`` it exactly like base data, and the LOI machinery
ages it out naturally.  The paper's two policies are both available:
``eager`` pushes the intermediate into the ring immediately; ``lazy``
keeps it on the creator's disk until a request arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.ring import DataCyclotron

__all__ = ["CachedResult", "ResultCache"]


@dataclass
class CachedResult:
    """Bookkeeping for one published intermediate."""

    key: str
    bat_id: int
    owner: int
    size: int
    created_at: float
    hits: int = 0


class ResultCache:
    """A ring-wide index of published intermediate results."""

    def __init__(
        self,
        dc: DataCyclotron,
        first_bat_id: int = 1_000_000_000,
        eager: bool = False,
    ):
        self.dc = dc
        self.eager = eager
        self._next_bat_id = first_bat_id
        self._by_key: Dict[str, CachedResult] = {}
        self.publishes = 0
        self.lookups = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[CachedResult]:
        """Find a published intermediate; counts hit/miss statistics."""
        self.lookups += 1
        entry = self._by_key.get(key)
        if entry is None:
            self.misses += 1
            return None
        entry.hits += 1
        return entry

    def publish(
        self,
        key: str,
        size: int,
        owner: int,
        payload: Any = None,
    ) -> CachedResult:
        """Register an intermediate result created at ``owner``.

        With ``eager`` circulation the result enters the storage ring
        immediately (the "throw all intermediates into the ring" policy);
        otherwise it stays on the creator's disk until requested (the
        "stay alive in the local cache" policy).  Re-publishing a key
        returns the existing entry.
        """
        if size <= 0:
            raise ValueError("result size must be positive")
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        bat_id = self._next_bat_id
        self._next_bat_id += 1
        self.dc.add_bat(bat_id, size=size, owner=owner, payload=payload)
        entry = CachedResult(
            key=key,
            bat_id=bat_id,
            owner=owner,
            size=size,
            created_at=self.dc.sim.now,
        )
        self._by_key[key] = entry
        self.publishes += 1
        if self.eager:
            self.dc.nodes[owner].loader.try_load(bat_id)
        return entry

    def invalidate(self, key: str) -> None:
        """Drop an intermediate (e.g. after an update to its inputs).

        The owning loader marks the BAT deleted; a copy still flowing is
        swallowed on its next pass at the owner, and late requests fail
        with "BAT does not exist" -- the paper's outcome 1.
        """
        entry = self._by_key.pop(key, None)
        if entry is None:
            return
        owned = self.dc.nodes[entry.owner].s1.maybe(entry.bat_id)
        if owned is not None:
            owned.deleted = True

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return (self.lookups - self.misses) / self.lookups

    def entries(self) -> Dict[str, CachedResult]:
        return dict(self._by_key)
