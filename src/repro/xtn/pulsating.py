"""Pulsating rings: size adaptation and the ring-size sweep (section 6.3).

"We introduce the notion of pulsating rings that adaptively shrink or
grow to match the requirements of the workload ... The decision to leave
a ring can be made locally, in a self-organizing way, based on the
amount of data and requests flowing by the nodes. ... Extending a ring
calls for a named service, where nodes are awaiting a call of duty."

Two pieces:

* :class:`PulsatingController` -- the local leave/join decision rule: a
  node leaves after its resource exploitation stays under a threshold
  for several consecutive observations; an overload calls the named
  service for an extra node.
* :class:`RingSizeSweep` -- the section 6.3 "peek-preview experiment":
  the Gaussian workload of section 5.3, total query volume held stable,
  while the ring grows from 5 to 20 nodes.  Its outcome feeds Figures 10
  (maximum request latency per BAT) and 11 (maximum cycles per BAT), and
  the observed "for every five nodes added, a latency growth of 75% in
  the BAT cycle duration".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import MB, DataCyclotronConfig
from repro.core.ring import DataCyclotron
from repro.events import types as ev
from repro.workloads.base import UniformDataset, populate_ring
from repro.workloads.gaussian import GaussianWorkload

__all__ = [
    "EpochReport",
    "PulsatingController",
    "PulsatingRing",
    "RingSizeSweep",
    "SweepOutcome",
]


class PulsatingController:
    """The local shrink/grow decision rule of section 6.3."""

    def __init__(
        self,
        leave_threshold: float = 0.15,
        join_threshold: float = 0.90,
        patience: int = 3,
        bus=None,
        ring: int = 0,
        clock=None,
    ):
        """A node volunteers to leave after ``patience`` consecutive
        observations of exploitation below ``leave_threshold``; a node
        observing load above ``join_threshold`` calls for reinforcement.

        With a ``bus``, every decision is also published as a typed
        event (``RingLeaveVolunteered`` / ``RingJoinCalled``) stamped
        ``ring`` and timestamped by ``clock`` (a zero-argument callable,
        typically ``lambda: sim.now``), so the multiring split/merge
        controller and the tracer can subscribe.
        """
        if not 0 <= leave_threshold < join_threshold <= 1:
            raise ValueError("thresholds must satisfy 0 <= leave < join <= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.leave_threshold = leave_threshold
        self.join_threshold = join_threshold
        self.patience = patience
        self.bus = bus
        self.ring = ring
        self.clock = clock if clock is not None else (lambda: 0.0)
        self._idle_streak: Dict[int, int] = {}
        self.leave_events: List[int] = []
        self.join_calls: int = 0

    def _publish(self, event) -> None:
        if self.bus is not None and self.bus.active:
            self.bus.publish(event)

    def observe(self, node: int, exploitation: float) -> Optional[str]:
        """Feed one utilisation sample; returns "leave", "join" or None."""
        if exploitation > self.join_threshold:
            self._idle_streak[node] = 0
            self.join_calls += 1
            self._publish(ev.RingJoinCalled(self.clock(), node, self.ring))
            return "join"
        if exploitation < self.leave_threshold:
            streak = self._idle_streak.get(node, 0) + 1
            self._idle_streak[node] = streak
            if streak >= self.patience:
                self._idle_streak[node] = 0
                self.leave_events.append(node)
                self._publish(ev.RingLeaveVolunteered(self.clock(), node, self.ring))
                return "leave"
            return None
        self._idle_streak[node] = 0
        return None

    def recommend_size(self, current: int, utilisations: Sequence[float]) -> int:
        """Ring-level recommendation from a snapshot of all nodes."""
        if not utilisations:
            return current
        mean = sum(utilisations) / len(utilisations)
        if mean > self.join_threshold:
            return current + 1
        if mean < self.leave_threshold and current > 1:
            return current - 1
        return current


@dataclass
class SweepOutcome:
    """One ring size's results for Figures 10 and 11."""

    n_nodes: int
    max_request_latency: Dict[int, float]  # per BAT id (Figure 10)
    max_cycles: Dict[int, int]             # per BAT id (Figure 11)
    mean_cycle_duration: float             # the 75%-per-5-nodes claim
    finished: int
    duration: float

    @property
    def peak_latency(self) -> float:
        return max(self.max_request_latency.values(), default=0.0)

    @property
    def peak_cycles(self) -> int:
        return max(self.max_cycles.values(), default=0)


class RingSizeSweep:
    """The Gaussian scenario at several ring sizes, constant workload."""

    def __init__(
        self,
        n_bats: int = 1000,
        min_size: int = 1 * MB,
        max_size: int = 10 * MB,
        total_rate: float = 800.0,     # aggregate queries/second over the ring
        duration: float = 60.0,
        mean: Optional[float] = None,  # default: centre of the id range
        std: Optional[float] = None,
        min_proc_time: float = 0.100,
        max_proc_time: float = 0.200,
        bat_queue_capacity: int = 200 * MB,
        seed: int = 0,
    ):
        self.n_bats = n_bats
        self.min_size = min_size
        self.max_size = max_size
        self.total_rate = total_rate
        self.duration = duration
        self.mean = mean if mean is not None else n_bats / 2
        self.std = std if std is not None else n_bats / 20
        self.min_proc_time = min_proc_time
        self.max_proc_time = max_proc_time
        self.bat_queue_capacity = bat_queue_capacity
        self.seed = seed

    def run_size(self, n_nodes: int, max_time: float = 3600.0) -> SweepOutcome:
        """Run the stable workload on a ring of ``n_nodes``."""
        dataset = UniformDataset(
            n_bats=self.n_bats,
            min_size=self.min_size,
            max_size=self.max_size,
            seed=self.seed,
        )
        config = DataCyclotronConfig(
            n_nodes=n_nodes,
            bat_queue_capacity=self.bat_queue_capacity,
            seed=self.seed,
        )
        dc = DataCyclotron(config)
        populate_ring(dc, dataset)
        workload = GaussianWorkload(
            dataset,
            n_nodes=n_nodes,
            queries_per_second=self.total_rate / n_nodes,
            duration=self.duration,
            mean=self.mean,
            std=self.std,
            min_proc_time=self.min_proc_time,
            max_proc_time=self.max_proc_time,
            seed=self.seed,
        )
        workload.submit_to(dc)
        dc.run_until_done(max_time=max_time)

        latencies = {
            b: s.max_request_latency
            for b, s in dc.metrics.bats.items()
            if s.max_request_latency > 0
        }
        cycles = {
            b: s.max_cycles for b, s in dc.metrics.bats.items() if s.max_cycles > 0
        }
        # cycle duration estimate: per-hop transfer of the mean BAT times n
        mean_bat = dataset.mean_size
        per_hop = mean_bat / config.bandwidth + config.link_delay
        return SweepOutcome(
            n_nodes=n_nodes,
            max_request_latency=latencies,
            max_cycles=cycles,
            mean_cycle_duration=per_hop * n_nodes,
            finished=dc.metrics.finished_count(),
            duration=dc.now,
        )

    def run(self, sizes: Sequence[int] = (5, 10, 15, 20)) -> List[SweepOutcome]:
        return [self.run_size(n) for n in sizes]


# ----------------------------------------------------------------------
# epoch-based dynamic resizing
# ----------------------------------------------------------------------
@dataclass
class EpochReport:
    """What one epoch of a pulsating ring looked like."""

    epoch: int
    n_nodes: int
    submitted: int
    finished: int
    mean_lifetime: float
    mean_exploitation: float
    next_n_nodes: int

    @property
    def action(self) -> str:
        if self.next_n_nodes > self.n_nodes:
            return "grow"
        if self.next_n_nodes < self.n_nodes:
            return "shrink"
        return "stay"


class PulsatingRing:
    """Adaptive ring sizing at epoch granularity (section 6.3).

    The paper envisions nodes joining/leaving a live ring with updates
    "localized to its two (envisioned) neighbors"; we realise the
    decision loop at epoch boundaries: run an epoch of workload, measure
    each node's resource exploitation (data-channel link utilisation,
    the "amount of data and requests flowing by the nodes"), ask the
    :class:`PulsatingController` for a new size, and reconfigure.  A
    reconfigured ring starts with cold buffers -- the hot set reloads on
    demand, which mirrors the real cost of membership changes.

    ``make_workload(n_nodes, duration, epoch)`` must return an object
    with ``submit_to(dc)`` (any :class:`~repro.workloads.base.Workload`)
    whose arrivals fall within ``[0, duration)``.
    """

    def __init__(
        self,
        dataset: UniformDataset,
        make_workload,
        controller: Optional[PulsatingController] = None,
        initial_nodes: int = 10,
        min_nodes: int = 2,
        max_nodes: int = 20,
        config_overrides: Optional[dict] = None,
    ):
        if not min_nodes <= initial_nodes <= max_nodes:
            raise ValueError("need min_nodes <= initial_nodes <= max_nodes")
        self.dataset = dataset
        self.make_workload = make_workload
        self.controller = (
            controller if controller is not None else PulsatingController()
        )
        self.n_nodes = initial_nodes
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.config_overrides = dict(config_overrides or {})
        self.reports: List[EpochReport] = []

    def run_epoch(self, epoch: int, duration: float, max_time: float = 3600.0) -> EpochReport:
        config = DataCyclotronConfig(
            n_nodes=self.n_nodes, **self.config_overrides
        )
        dc = DataCyclotron(config)
        populate_ring(dc, self.dataset)
        workload = self.make_workload(self.n_nodes, duration, epoch)
        submitted = workload.submit_to(dc)
        dc.run_until_done(max_time=max_time)
        horizon = max(dc.now, duration)
        # exploitation: CPU demand each node actually served, the
        # resource a leaving node would hand back to the pool
        utilisations = [
            node.cpu_seconds / (config.cores_per_node * horizon)
            for node in dc.nodes
        ]
        mean_util = sum(utilisations) / len(utilisations)
        recommended = self.controller.recommend_size(self.n_nodes, utilisations)
        next_nodes = max(self.min_nodes, min(self.max_nodes, recommended))
        lifetimes = dc.metrics.lifetimes()
        report = EpochReport(
            epoch=epoch,
            n_nodes=self.n_nodes,
            submitted=submitted,
            finished=dc.metrics.finished_count(),
            mean_lifetime=sum(lifetimes) / len(lifetimes) if lifetimes else 0.0,
            mean_exploitation=mean_util,
            next_n_nodes=next_nodes,
        )
        self.reports.append(report)
        self.n_nodes = next_nodes
        return report

    def run(self, epochs: int, epoch_duration: float) -> List[EpochReport]:
        for epoch in range(epochs):
            self.run_epoch(epoch, epoch_duration)
        return self.reports
