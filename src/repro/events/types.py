"""The event taxonomy: every observable action of the Data Cyclotron.

One slotted ``@dataclass`` per event kind, grouped by the paper section
that motivates it (see docs/events.md for the full taxonomy and the
mapping from the section 5 figures to the events that feed them).  All
events carry the simulated timestamp ``t``; protocol events also carry
the publishing ``node`` so traces can be split per ring position.

Events are plain data -- no behaviour, no references into the runtime --
so any subscriber (metrics, tracer, invariant monitor, a future live
dashboard) can retain them safely.  They are deliberately *not* frozen:
tens of thousands are constructed per simulated second, and a frozen
dataclass pays ``object.__setattr__`` per field at construction time.
Subscribers must treat received events as immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    # query lifecycle (Figures 6, 8; Table 4)
    "QueryRegistered",
    "QueryFinished",
    "QueryFailed",
    "QueryDegraded",
    # BAT lifecycle (Figures 7, 9, 11)
    "BatTagged",
    "BatLoaded",
    "BatUnloaded",
    "BatTouched",
    "BatPinned",
    "BatCycled",
    "BatDropped",
    "BatForwarded",
    # request propagation (Figure 3, Figure 10)
    "RequestCreated",
    "RequestForwarded",
    "RequestAbsorbed",
    "RequestReturnedToOrigin",
    "RequestServed",
    "RequestResent",
    "RequestUnavailable",
    # loader / hot-set management (Figures 4, 5)
    "LoadPostponed",
    "LoitChanged",
    # fault injection (docs/faults.md)
    "NodeCrashed",
    "NodeRejoined",
    "BatPurged",
    "BatRehomed",
    "BatAdopted",
    "OrphanRetired",
    "LinkDegraded",
    "LinkRestored",
    "FaultInjected",
    # resilience: failure detection + retry/failover (docs/resilience.md)
    "NodeFailed",
    "NodeSuspected",
    "NodeSuspicionCleared",
    "NodeConfirmedDead",
    "RingRepaired",
    "ResendAbandoned",
    "BatPromoted",
    "QueryRetried",
    "QueryAbandoned",
    "QueryShed",
    "StaleResultDiscarded",
    # closed-loop overload control (docs/overload.md)
    "OverloadStateChanged",
    "TierShed",
    "RetryBudgetExhausted",
    # network layer (section 5 setup)
    "LinkTransmit",
    "LinkDelivered",
    "LinkDropped",
    "ChannelLoss",
    # pulsating rings (section 6.3, docs/multiring.md)
    "RingLeaveVolunteered",
    "RingJoinCalled",
    # multi-ring federation (docs/multiring.md)
    "CrossRingRequest",
    "CrossRingTransfer",
    "QueryShipped",
    "MigrationStarted",
    "FragmentMigrated",
    "MigrationAborted",
    "RingSplit",
    "RingsMerged",
    "GatewayFailed",
    "GatewayElected",
    "ServeHandedOff",
    # query processing units (docs/qpu.md)
    "QpuQueryRouted",
    "KvProbeServed",
    "StreamBatConsumed",
    # front-door serving tier (docs/frontdoor.md)
    "QueryEstimated",
    "FrontDoorAdmitted",
    "FrontDoorRejected",
    "EstimateFeedback",
    # simulation engine
    "RotationFastForwarded",
    "PartitionSynced",
    "TimeGrantIssued",
    "SimEventFired",
]


# ----------------------------------------------------------------------
# query lifecycle
# ----------------------------------------------------------------------
@dataclass(slots=True)
class QueryRegistered:
    """A query arrived at ``node`` and entered the system."""

    t: float
    query_id: int
    node: int
    tag: str = ""


@dataclass(slots=True)
class QueryFinished:
    """All operators of the query completed successfully."""

    t: float
    query_id: int
    node: int


@dataclass(slots=True)
class QueryFailed:
    """The query terminated with an error (e.g. ``DATA_UNAVAILABLE``)."""

    t: float
    query_id: int
    error: str
    node: int


@dataclass(slots=True)
class QueryDegraded:
    """The query needed fault recovery (resend / re-home / orphan serve)."""

    t: float
    query_id: int
    node: int


# ----------------------------------------------------------------------
# BAT lifecycle
# ----------------------------------------------------------------------
@dataclass(slots=True)
class BatTagged:
    """A workload tag (e.g. ``dh2``) was attached to a BAT (Figure 8a)."""

    t: float
    bat_id: int
    tag: str


@dataclass(slots=True)
class BatLoaded:
    """The owner put the BAT into the storage ring (Figure 4, load)."""

    t: float
    bat_id: int
    size: int
    node: int


@dataclass(slots=True)
class BatUnloaded:
    """The owner pulled the BAT out of the hot set (Figure 5, unload)."""

    t: float
    bat_id: int
    size: int
    node: int


@dataclass(slots=True)
class BatTouched:
    """A node pinned the passing BAT into local memory (a "copy")."""

    t: float
    bat_id: int
    node: int


@dataclass(slots=True)
class BatPinned:
    """``count`` pin() calls were served for the BAT at ``node``."""

    t: float
    bat_id: int
    node: int
    count: int = 1


@dataclass(slots=True)
class BatCycled:
    """The BAT completed its ``cycles``-th ring rotation (Figure 11)."""

    t: float
    bat_id: int
    cycles: int
    node: int


@dataclass(slots=True)
class BatDropped:
    """A BAT copy was lost in transit: DropTail or injected loss."""

    t: float
    bat_id: int
    size: int
    by_loss: bool
    node: int


@dataclass(slots=True)
class BatForwarded:
    """``node`` enqueued a BAT message for its successor."""

    t: float
    bat_id: int
    node: int


# ----------------------------------------------------------------------
# request propagation (Figure 3)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RequestCreated:
    """A request message entered the ring anti-clockwise."""

    t: float
    bat_id: int
    node: int


@dataclass(slots=True)
class RequestForwarded:
    """Outcome 6: the request passed through ``node`` unchanged."""

    t: float
    bat_id: int
    node: int


@dataclass(slots=True)
class RequestAbsorbed:
    """Outcome 5: a passing request doubled as this node's own."""

    t: float
    bat_id: int
    node: int


@dataclass(slots=True)
class RequestReturnedToOrigin:
    """Outcome 1: the request circled the ring unanswered."""

    t: float
    bat_id: int
    node: int


@dataclass(slots=True)
class RequestServed:
    """The first pin was served ``latency`` seconds after the request."""

    t: float
    bat_id: int
    latency: float
    node: int


@dataclass(slots=True)
class RequestResent:
    """The rotational-delay timeout fired and the request was re-issued."""

    t: float
    bat_id: int
    node: int


@dataclass(slots=True)
class RequestUnavailable:
    """A request failed fast: the BAT's owner is dead (docs/faults.md)."""

    t: float
    bat_id: int
    node: int


# ----------------------------------------------------------------------
# loader / hot-set management
# ----------------------------------------------------------------------
@dataclass(slots=True)
class LoadPostponed:
    """Outcome 3: the BAT queue is full, the load waits for ``loadAll``."""

    t: float
    bat_id: int
    node: int


@dataclass(slots=True)
class LoitChanged:
    """The adaptive LOIT controller stepped to a new ``threshold``."""

    t: float
    node: int
    threshold: float


# ----------------------------------------------------------------------
# fault injection (docs/faults.md)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class NodeCrashed:
    """``node`` died: queues purged, ring rewired, peers notified."""

    t: float
    node: int


@dataclass(slots=True)
class NodeRejoined:
    """``node`` restarted with an empty hot set and was spliced back."""

    t: float
    node: int
    owned_bats: List[int]


@dataclass(slots=True)
class BatPurged:
    """A BAT message died with a crashed node's volatile queues."""

    t: float
    bat_id: int
    size: int
    node: int


@dataclass(slots=True)
class BatRehomed:
    """Ownership of the BAT moved off a dead node to ``new_owner``."""

    t: float
    bat_id: int
    new_owner: int


@dataclass(slots=True)
class BatAdopted:
    """A circulating copy of a re-homed BAT was claimed by its new owner."""

    t: float
    bat_id: int
    node: int


@dataclass(slots=True)
class OrphanRetired:
    """A dead owner's copy was pulled out of circulation at ``node``."""

    t: float
    bat_id: int
    size: int
    node: int


@dataclass(slots=True)
class LinkDegraded:
    """``node``'s outgoing channel(s) were degraded by fault injection."""

    t: float
    node: int
    direction: str


@dataclass(slots=True)
class LinkRestored:
    """A timed link degradation healed."""

    t: float
    node: int


@dataclass(slots=True)
class FaultInjected:
    """The injector fired one scheduled scenario event (``kind``)."""

    t: float
    kind: str
    node: int


# ----------------------------------------------------------------------
# resilience: failure detection, repair, retry (docs/resilience.md)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class NodeFailed:
    """``node`` died *silently*: queues purged, no repair yet.

    Unlike :class:`NodeCrashed` (the injector's omniscient crash+repair),
    a failed node leaves the ring wedged until the heartbeat detector
    confirms the death and triggers :class:`RingRepaired`.
    """

    t: float
    node: int


@dataclass(slots=True)
class NodeSuspected:
    """``by``'s failure detector crossed the suspicion threshold for ``node``."""

    t: float
    node: int
    by: int
    phi: float


@dataclass(slots=True)
class NodeSuspicionCleared:
    """Liveness traffic from ``node`` resumed; ``by`` withdrew suspicion."""

    t: float
    node: int
    by: int


@dataclass(slots=True)
class NodeConfirmedDead:
    """``by``'s phi score for ``node`` crossed the confirmation threshold."""

    t: float
    node: int
    by: int
    phi: float


@dataclass(slots=True)
class RingRepaired:
    """Detector-driven repair completed: topology rewired, BATs re-homed.

    ``latency`` is seconds from the physical failure to this repair --
    the detection + repair latency the recovery report tracks.
    """

    t: float
    node: int
    latency: float


@dataclass(slots=True)
class ResendAbandoned:
    """Resend escalation gave up on ``bat_id`` after ``resends`` attempts."""

    t: float
    bat_id: int
    node: int
    resends: int


@dataclass(slots=True)
class BatPromoted:
    """A replica owner took over ``bat_id`` from a dead primary."""

    t: float
    bat_id: int
    node: int


@dataclass(slots=True)
class QueryRetried:
    """The retry manager re-dispatched the query (``attempt`` >= 2)."""

    t: float
    query_id: int
    attempt: int
    node: int
    error: str


@dataclass(slots=True)
class QueryAbandoned:
    """Retry budget or deadline exhausted; the query failed terminally."""

    t: float
    query_id: int
    attempts: int
    error: str


@dataclass(slots=True)
class QueryShed:
    """Admission control fast-failed the query.

    Published by the suspicion valve (ring-wide detector knowledge), the
    :class:`~repro.dbms.executor.RingDatabase` admission valve (count or
    byte budget; ``engine`` carries the refused engine class then), and
    the overload controller's brownout gate (docs/overload.md), and the
    front door's estimate valve (docs/frontdoor.md).

    ``reason`` distinguishes who refused: ``"tier-shed"`` (overload
    controller), ``"count-valve"`` / ``"byte-valve"`` (dispatcher
    admission), ``"front-door-estimate"`` (statistics-driven front
    door).  Empty when the publisher predates the taxonomy; the metrics
    bridge only counts non-empty reasons, so unset stays bit-identical.
    """

    t: float
    query_id: int
    node: int
    engine: str = ""
    reason: str = ""


@dataclass(slots=True)
class StaleResultDiscarded:
    """A superseded attempt completed; its result was suppressed."""

    t: float
    query_id: int
    attempt: int


# ----------------------------------------------------------------------
# closed-loop overload control (docs/overload.md)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class OverloadStateChanged:
    """The overload controller moved its brownout level.

    ``level`` is the new shed level (queries with ``tier < level`` are
    refused); ``state`` is the coarse label (``normal`` / ``brownout``
    / ``overload``); ``p99`` is the rolling windowed p99 that drove the
    transition and ``inflight_bytes`` the byte reservation at that
    instant.
    """

    t: float
    level: int
    state: str
    p99: float
    inflight_bytes: int


@dataclass(slots=True)
class TierShed:
    """The brownout gate refused one query of priority ``tier``."""

    t: float
    query_id: int
    tier: int
    node: int


@dataclass(slots=True)
class RetryBudgetExhausted:
    """The cluster-wide retry token bucket ran dry for this re-dispatch.

    The logical query fails terminally (``QueryAbandoned`` follows)
    instead of amplifying load on an already-degraded ring.
    """

    t: float
    query_id: int
    attempts: int


# ----------------------------------------------------------------------
# network layer
# ----------------------------------------------------------------------
@dataclass(slots=True)
class LinkTransmit:
    """A message started serialising onto the wire of ``link``."""

    t: float
    link: str
    size: int
    mtype: str


@dataclass(slots=True)
class LinkDelivered:
    """A message fully arrived at the far end of ``link``."""

    t: float
    link: str
    size: int
    mtype: str


@dataclass(slots=True)
class LinkDropped:
    """DropTail discarded a message from ``link``'s full transmit queue."""

    t: float
    link: str
    size: int
    mtype: str


@dataclass(slots=True)
class ChannelLoss:
    """Injected loss ate a message on ``channel``."""

    t: float
    channel: str
    size: int
    mtype: str


# ----------------------------------------------------------------------
# pulsating rings (section 6.3, docs/multiring.md)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RingLeaveVolunteered:
    """A node's exploitation stayed under the leave threshold long enough."""

    t: float
    node: int
    ring: int = 0


@dataclass(slots=True)
class RingJoinCalled:
    """A node crossed the join threshold: the ring wants reinforcements."""

    t: float
    node: int
    ring: int = 0


# ----------------------------------------------------------------------
# multi-ring federation (docs/multiring.md)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class CrossRingRequest:
    """A gateway dispatched a fetch for a BAT homed on another ring."""

    t: float
    bat_id: int
    from_ring: int
    to_ring: int
    resend: bool = False


@dataclass(slots=True)
class CrossRingTransfer:
    """A remote gateway shipped a BAT copy back across the inter-ring link."""

    t: float
    bat_id: int
    from_ring: int
    to_ring: int
    size: int
    latency: float


@dataclass(slots=True)
class QueryShipped:
    """A whole query moved to the ring that holds most of its data."""

    t: float
    query_id: int
    from_ring: int
    to_ring: int
    node: int


@dataclass(slots=True)
class MigrationStarted:
    """The placement manager began re-homing a fragment to another ring."""

    t: float
    bat_id: int
    from_ring: int
    to_ring: int
    size: int


@dataclass(slots=True)
class FragmentMigrated:
    """A fragment migration completed: the BAT is homed on ``to_ring``."""

    t: float
    bat_id: int
    from_ring: int
    to_ring: int
    size: int
    latency: float


@dataclass(slots=True)
class MigrationAborted:
    """An in-flight migration was rolled back (gateway death, lost link)."""

    t: float
    bat_id: int
    from_ring: int
    to_ring: int
    reason: str


@dataclass(slots=True)
class RingSplit:
    """The split/merge controller activated a standby ring for a hot one."""

    t: float
    from_ring: int
    new_ring: int
    fragments: int


@dataclass(slots=True)
class RingsMerged:
    """An underutilized ring drained its fragments into another ring."""

    t: float
    from_ring: int
    into_ring: int
    fragments: int


@dataclass(slots=True)
class GatewayFailed:
    """A ring's gateway node died; cross-ring traffic re-routes."""

    t: float
    ring: int
    node: int


@dataclass(slots=True)
class GatewayElected:
    """A new gateway took over a ring's inter-ring endpoints."""

    t: float
    ring: int
    node: int


@dataclass(slots=True)
class ServeHandedOff:
    """An in-flight fetch serve moved off a dead gateway to ``to_node``.

    Published when the gateway guard re-dispatches a pending
    :class:`~repro.multiring.messages.FetchRequest` on the freshly
    elected gateway instead of letting the requester wait out its
    resend timeout -- the mechanism that cuts the failover tail out of
    the gateway-chaos scenario's p999 (docs/workloads.md).
    """

    t: float
    bat_id: int
    ring: int
    from_node: int
    to_node: int


# ----------------------------------------------------------------------
# query processing units (docs/qpu.md)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class QpuQueryRouted:
    """The dispatcher handed a query to the ``engine`` QPU on ``node``.

    ``footprint`` is the number of BATs the compiled query declared it
    will touch; ``cost`` the engine's pre-execution cost estimate.
    """

    t: float
    query_id: int
    engine: str
    node: int
    footprint: int
    cost: float


@dataclass(slots=True)
class KvProbeServed:
    """The KV engine answered a point lookup (``hit=False``: unknown key)."""

    t: float
    query_id: int
    bat_id: int
    node: int
    hit: bool


@dataclass(slots=True)
class StreamBatConsumed:
    """The streaming engine folded one partition as it rotated past."""

    t: float
    query_id: int
    bat_id: int
    node: int
    rows: int


# ----------------------------------------------------------------------
# front-door serving tier (docs/frontdoor.md)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class QueryEstimated:
    """The statistics estimator priced a request before compilation.

    ``footprint_bytes``/``cost`` are the predicted persistent footprint
    and one-pass operator cost; ``tier`` and ``deadline`` are the
    serving class the front door derived from them (higher tier = more
    protected = smaller predicted footprint).
    """

    t: float
    query_id: int
    node: int
    engine: str
    footprint_bytes: int
    cost: float
    selectivity: float
    tier: int
    deadline: float


@dataclass(slots=True)
class FrontDoorAdmitted:
    """The front door admitted the request into the ring database."""

    t: float
    query_id: int
    node: int
    engine: str
    tier: int
    deadline: float
    estimated_bytes: int


@dataclass(slots=True)
class FrontDoorRejected:
    """The front door refused the request at arrival time.

    Always paired with a ``QueryShed(reason="front-door-estimate")`` so
    SLO accounting sees the refusal; ``cause`` carries the finer-grained
    trigger (``budget`` / ``single-query-cap`` / ``controller`` /
    ``estimate-error``).
    """

    t: float
    query_id: int
    node: int
    engine: str
    tier: int
    estimated_bytes: int
    cause: str


@dataclass(slots=True)
class EstimateFeedback:
    """Predicted-vs-actual closure for one front-door query.

    Published at completion: ``actual_bytes`` comes from the compiled
    footprint, ``service_time`` from registration-to-finish on the
    ring.  The estimator folds the same observation into its per-class
    accuracy report (`repro stats`).
    """

    t: float
    query_id: int
    engine: str
    query_class: str
    predicted_bytes: int
    actual_bytes: int
    predicted_cost: float
    service_time: float


# ----------------------------------------------------------------------
# simulation engine
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RotationFastForwarded:
    """A flight coalesced ``hops`` disinterested ring hops into one event.

    Published when a rotation fast-forward flight lands (docs/performance.md);
    ``node`` is the last skipped node, the one that performs the real
    send into the stop node.
    """

    t: float
    kind: str  # "bat" | "request"
    bat_id: int
    node: int
    hops: int


@dataclass(slots=True)
class TimeGrantIssued:
    """A partition granted the kernel permission to advance to ``eot``.

    The conservative-lookahead null message (docs/parallel.md): the
    partition promises to send no cross-partition message that could be
    delivered before its earliest output time.  ``bound`` names the
    binding constraint ("idle", "inflight", "query", "inbound").
    """

    t: float
    partition: int
    eot: float
    bound: str


@dataclass(slots=True)
class PartitionSynced:
    """The partitioned kernel committed one synchronization window.

    All partitions executed every event strictly before ``window`` and
    exchanged ``messages`` cross-partition deliveries (docs/parallel.md).
    """

    t: float
    window: float
    partitions: int
    messages: int


@dataclass(slots=True)
class SimEventFired:
    """The discrete-event engine dispatched one callback."""

    t: float
    seq: int
    fn: str
    node: Optional[int] = None
