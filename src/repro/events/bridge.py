"""The metrics subscriber: routes bus events into a MetricsCollector.

This is the compatibility layer of the event-bus refactor: the protocol
code publishes typed events, and this bridge reproduces -- bit for bit
-- the collector state the old hard-wired ``self.metrics.*`` calls
produced.  The golden-equivalence test (tests/test_events_golden.py)
pins that property against a checked-in snapshot.

The collector keeps its full public API; the bridge only decides *when*
its methods run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.events import types as ev
from repro.events.bus import Bus

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsCollector

__all__ = ["attach_metrics"]


def attach_metrics(bus: Bus, metrics: "MetricsCollector") -> Callable[[], None]:
    """Subscribe ``metrics`` to every event it accounts for.

    Handlers are bound per event type; events the collector does not
    care about (``LinkTransmit``, ``SimEventFired``, ...) are simply not
    subscribed, so they keep their no-subscriber fast path.

    Returns a detach callable that removes every subscription made here
    -- the way to run a simulation with zero observers (perf baselines).
    """
    subscribed = []

    def sub(event_type, handler):
        bus.subscribe(event_type, handler)
        subscribed.append((event_type, handler))

    # --- query lifecycle ----------------------------------------------
    sub(ev.QueryRegistered,
        lambda e: metrics.query_registered(e.t, e.query_id, e.node, e.tag))
    sub(ev.QueryFinished, lambda e: metrics.query_finished(e.t, e.query_id))
    sub(ev.QueryFailed, lambda e: metrics.query_failed(e.t, e.query_id, e.error))
    sub(ev.QueryDegraded, lambda e: metrics.query_degraded(e.query_id))

    # --- BAT lifecycle -------------------------------------------------
    sub(ev.BatTagged, lambda e: metrics.tag_bat(e.bat_id, e.tag))
    sub(ev.BatLoaded, lambda e: metrics.bat_loaded(e.t, e.bat_id, e.size))
    sub(ev.BatUnloaded, lambda e: metrics.bat_unloaded(e.t, e.bat_id, e.size))
    sub(ev.BatTouched, lambda e: metrics.bat_touched(e.t, e.bat_id))
    sub(ev.BatPinned, lambda e: metrics.bat_pinned(e.t, e.bat_id, e.count))
    sub(ev.BatCycled, lambda e: metrics.bat_cycle(e.t, e.bat_id, e.cycles))
    sub(ev.BatDropped,
        lambda e: metrics.bat_dropped(e.t, e.bat_id, e.size, e.by_loss))

    # --- request propagation ------------------------------------------
    sub(ev.RequestCreated, lambda e: metrics.request_created(e.t, e.bat_id))
    sub(ev.RequestServed,
        lambda e: metrics.request_served(e.t, e.bat_id, e.latency))
    sub(ev.RequestUnavailable,
        lambda e: metrics.request_unavailable(e.t, e.bat_id))

    # --- pure counters -------------------------------------------------
    def _count(attr):
        def bump(_event, _m=metrics, _attr=attr):
            setattr(_m, _attr, getattr(_m, _attr) + 1)
        return bump

    sub(ev.RequestForwarded, _count("requests_forwarded"))
    sub(ev.RequestAbsorbed, _count("requests_absorbed"))
    sub(ev.RequestReturnedToOrigin, _count("requests_returned_to_origin"))
    sub(ev.RequestResent, _count("resends"))
    sub(ev.BatForwarded, _count("bat_messages_forwarded"))
    sub(ev.LoadPostponed, _count("pending_postponed"))
    sub(ev.LoitChanged, _count("loit_changes"))

    # --- fault injection (docs/faults.md) ------------------------------
    sub(ev.BatPurged, lambda e: metrics.bat_purged(e.t, e.bat_id, e.size))
    sub(ev.BatRehomed, lambda e: metrics.bat_rehomed(e.t, e.bat_id))
    sub(ev.BatAdopted, lambda e: metrics.bat_adopted(e.t, e.bat_id))
    sub(ev.OrphanRetired,
        lambda e: metrics.orphan_retired(e.t, e.bat_id, e.size))
    sub(ev.NodeCrashed, lambda e: metrics.node_down(e.t, e.node))
    sub(ev.NodeRejoined, lambda e: metrics.node_up(e.t, e.node, e.owned_bats))

    # --- resilience (docs/resilience.md) -------------------------------
    def _failed(e):
        metrics.nodes_failed += 1
        metrics.node_down(e.t, e.node)

    sub(ev.NodeFailed, _failed)
    sub(ev.RingRepaired, lambda e: metrics.ring_repaired(e.t, e.node, e.latency))
    sub(ev.NodeSuspected, _count("node_suspicions"))
    sub(ev.NodeSuspicionCleared, _count("suspicions_cleared"))
    sub(ev.NodeConfirmedDead, _count("nodes_confirmed_dead"))
    sub(ev.ResendAbandoned, _count("resends_abandoned"))
    sub(ev.BatPromoted, _count("bats_promoted"))
    sub(ev.QueryRetried, _count("queries_retried"))
    sub(ev.QueryAbandoned, _count("queries_abandoned"))
    sub(ev.QueryShed, lambda e: metrics.query_shed(e.engine, e.reason))
    sub(ev.StaleResultDiscarded, _count("stale_results_discarded"))

    # --- closed-loop overload control (docs/overload.md) ---------------
    sub(ev.OverloadStateChanged, _count("overload_state_changes"))
    sub(ev.TierShed, lambda e: metrics.tier_shed(e.tier))
    sub(ev.RetryBudgetExhausted, _count("retry_budget_exhausted"))

    # --- multi-ring federation (docs/multiring.md) ---------------------
    sub(ev.RingLeaveVolunteered, _count("ring_leaves_volunteered"))
    sub(ev.RingJoinCalled, _count("ring_join_calls"))
    sub(ev.CrossRingRequest, _count("cross_ring_requests"))
    sub(ev.CrossRingTransfer, _count("cross_ring_transfers"))
    sub(ev.QueryShipped, _count("queries_shipped"))
    sub(ev.MigrationStarted, _count("migrations_started"))
    sub(ev.FragmentMigrated, _count("fragments_migrated"))
    sub(ev.MigrationAborted, _count("migrations_aborted"))
    sub(ev.RingSplit, _count("ring_splits"))
    sub(ev.RingsMerged, _count("rings_merged"))
    sub(ev.GatewayFailed, _count("gateway_failures"))
    sub(ev.GatewayElected, _count("gateway_elections"))
    sub(ev.ServeHandedOff, _count("serves_handed_off"))

    # --- query processing units (docs/qpu.md) --------------------------
    sub(ev.QpuQueryRouted, lambda e: metrics.qpu_routed(e.engine))
    sub(ev.KvProbeServed, lambda e: metrics.kv_probe(e.hit))
    sub(ev.StreamBatConsumed, lambda e: metrics.stream_bat_consumed(e.rows))

    # --- front-door serving tier (docs/frontdoor.md) -------------------
    sub(ev.QueryEstimated, lambda e: metrics.query_estimated())
    sub(ev.FrontDoorAdmitted, lambda e: metrics.frontdoor_admit())
    sub(ev.FrontDoorRejected, lambda e: metrics.frontdoor_reject(e.tier))
    sub(
        ev.EstimateFeedback,
        lambda e: metrics.estimate_feedback(e.predicted_bytes, e.actual_bytes),
    )

    def detach():
        for event_type, handler in subscribed:
            bus.unsubscribe(event_type, handler)

    return detach
