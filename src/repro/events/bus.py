"""A tiny synchronous typed event bus.

Components *publish* event dataclasses (see :mod:`repro.events.types`)
and observers *subscribe* per event type -- or to the wildcard channel,
which sees everything.  Delivery is synchronous and in subscription
order: a publish returns only after every handler ran, which keeps the
simulation deterministic (subscribers run between simulator events, at
a consistent point of the protocol state machine).

Performance contract: publishing to an event type nobody subscribed to
is a single dict probe, and producers can skip building the event object
entirely by guarding with :meth:`Bus.wants` -- the pattern the network
and engine layers use for their high-frequency events.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Type

__all__ = ["Bus"]

Handler = Callable[[Any], None]

_NO_HANDLERS: tuple = ()


class Bus:
    """Publish/subscribe dispatch keyed on the event's concrete type.

    ``version`` increments on every (un)subscription.  Hot-path
    producers cache a ``wants()`` verdict against it and re-check only
    when the version moved, turning the per-event guard into one integer
    compare.  ``active`` is True while *any* handler is subscribed;
    producers guard publishes with it so a zero-observer simulation
    skips even constructing the event objects.
    """

    __slots__ = ("_subs", "_wildcard", "version", "active")

    def __init__(self) -> None:
        self._subs: Dict[Type, List[Handler]] = {}
        self._wildcard: List[Handler] = []
        self.version = 0
        self.active = False

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------
    def subscribe(self, event_type: Type, handler: Handler) -> Handler:
        """Invoke ``handler(event)`` for every published ``event_type``.

        Returns the handler so decorator-style use works too.
        """
        if not isinstance(event_type, type):
            raise TypeError(f"event_type must be a class, got {event_type!r}")
        self._subs.setdefault(event_type, []).append(handler)
        self.version += 1
        self.active = True
        return handler

    def subscribe_many(self, event_types, handler: Handler) -> Handler:
        """Subscribe one handler to several event types at once."""
        for event_type in event_types:
            self.subscribe(event_type, handler)
        return handler

    def subscribe_all(self, handler: Handler) -> Handler:
        """Wildcard subscription: ``handler`` sees every published event."""
        self._wildcard.append(handler)
        self.version += 1
        self.active = True
        return handler

    def unsubscribe(self, event_type: Type, handler: Handler) -> None:
        """Remove a per-type subscription (no-op if absent)."""
        handlers = self._subs.get(event_type)
        if handlers is None:
            return
        try:
            handlers.remove(handler)
        except ValueError:
            return
        if not handlers:
            del self._subs[event_type]
        self.version += 1
        self.active = bool(self._subs) or bool(self._wildcard)

    def unsubscribe_all(self, handler: Handler) -> None:
        """Remove a wildcard subscription (no-op if absent)."""
        try:
            self._wildcard.remove(handler)
        except ValueError:
            return
        self.version += 1
        self.active = bool(self._subs) or bool(self._wildcard)

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def wants(self, event_type: Type) -> bool:
        """True if publishing ``event_type`` would reach any handler.

        Producers of high-frequency events guard on this to skip even
        constructing the event object when nobody is listening.
        """
        return bool(self._wildcard) or event_type in self._subs

    def publish(self, event: Any) -> None:
        """Deliver ``event`` to its type's subscribers, then wildcards."""
        for handler in self._subs.get(type(event), _NO_HANDLERS):
            handler(event)
        if self._wildcard:
            for handler in self._wildcard:
                handler(event)

    # ------------------------------------------------------------------
    @property
    def subscription_count(self) -> int:
        """Total live subscriptions (typed + wildcard) -- introspection."""
        return sum(len(v) for v in self._subs.values()) + len(self._wildcard)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Bus {len(self._subs)} typed channels, "
            f"{len(self._wildcard)} wildcard subscribers>"
        )
