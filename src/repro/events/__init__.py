"""The monitoring backbone: a typed event bus plus stock subscribers.

Every layer of the simulated Data Cyclotron -- the event engine, the
network links, the per-node runtimes, the fault injector -- publishes
:mod:`repro.events.types` dataclasses onto a :class:`~repro.events.bus.Bus`
instead of mutating a metrics object directly.  Observers subscribe:

* :func:`~repro.events.bridge.attach_metrics` feeds the classic
  :class:`~repro.metrics.collector.MetricsCollector`,
* :class:`~repro.events.tracer.Tracer` records JSONL / Chrome traces,
* :class:`~repro.faults.invariants.InvariantMonitor` audits the ring
  live at every fault.

See docs/events.md for the taxonomy and a subscription quick-start.
"""

from repro.events.bus import Bus
from repro.events.bridge import attach_metrics
from repro.events.tracer import Tracer

__all__ = ["Bus", "Tracer", "attach_metrics"]
