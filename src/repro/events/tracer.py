"""Structured event tracing: JSONL capture and Chrome trace export.

A :class:`Tracer` is a wildcard bus subscriber that flattens every event
into a plain dict record (``{"event": <type name>, <field>: <value>,
...}``).  Records can be kept in memory, streamed to a JSON-Lines file
as they happen (the ``trace=`` runtime-config option), or exported in
the Chrome ``trace_event`` format that ``chrome://tracing`` / Perfetto
load directly -- one instant event per record, one track per ring node.

The same seed produces the same trace byte for byte; the regression
tests rely on it.
"""

from __future__ import annotations

import json
from dataclasses import fields
from typing import IO, Any, Dict, List, Optional, Tuple, Type

from repro.events.bus import Bus

__all__ = [
    "Tracer",
    "event_record",
    "read_jsonl",
    "records_to_chrome",
    "write_chrome",
]

_FIELD_CACHE: Dict[Type, Tuple[str, ...]] = {}


def _fields_of(event_type: Type) -> Tuple[str, ...]:
    cached = _FIELD_CACHE.get(event_type)
    if cached is None:
        cached = tuple(f.name for f in fields(event_type))
        _FIELD_CACHE[event_type] = cached
    return cached


def event_record(event: Any) -> Dict[str, Any]:
    """Flatten an event dataclass into a JSON-serialisable dict."""
    record: Dict[str, Any] = {"event": type(event).__name__}
    for name in _fields_of(type(event)):
        record[name] = getattr(event, name)
    return record


class Tracer:
    """Record every published event; replay as JSONL or a Chrome trace.

    Parameters
    ----------
    jsonl_path:
        When given, the file is opened immediately (so path errors
        surface early) and every record is appended as one JSON line
        the moment it is published.
    keep:
        Keep records in memory (needed for in-process export).  Defaults
        to True; long streaming runs can disable it and rely purely on
        the JSONL file.
    """

    def __init__(self, jsonl_path: Optional[str] = None, keep: bool = True):
        self.records: List[Dict[str, Any]] = []
        self.keep = keep
        self.jsonl_path = jsonl_path
        self._fh: Optional[IO[str]] = None
        self._buses: List[Bus] = []
        if jsonl_path is not None:
            self._fh = open(jsonl_path, "w")

    # ------------------------------------------------------------------
    # bus wiring
    # ------------------------------------------------------------------
    def attach(self, bus: Bus) -> "Tracer":
        """Start recording every event published on ``bus``."""
        bus.subscribe_all(self._on_event)
        self._buses.append(bus)
        return self

    def detach(self, bus: Optional[Bus] = None) -> None:
        """Stop recording (from ``bus``, or from every attached bus)."""
        buses = [bus] if bus is not None else list(self._buses)
        for b in buses:
            b.unsubscribe_all(self._on_event)
            if b in self._buses:
                self._buses.remove(b)

    def _on_event(self, event: Any) -> None:
        record = event_record(event)
        if self.keep:
            self.records.append(record)
        if self._fh is not None:
            json.dump(record, self._fh, separators=(",", ":"))
            self._fh.write("\n")

    def close(self) -> None:
        """Detach from every bus and close the JSONL stream, if any."""
        self.detach()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str) -> int:
        """Write the in-memory records as JSON Lines; returns the count."""
        with open(path, "w") as fh:
            for record in self.records:
                json.dump(record, fh, separators=(",", ":"))
                fh.write("\n")
        return len(self.records)

    def chrome_events(self) -> List[Dict[str, Any]]:
        return records_to_chrome(self.records)["traceEvents"]

    def to_chrome(self, path: str) -> int:
        """Write a Chrome ``trace_event`` file; returns the event count."""
        return write_chrome(self.records, path)


# ----------------------------------------------------------------------
# module-level converters (shared with the ``repro trace`` CLI)
# ----------------------------------------------------------------------
def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load trace records from a JSON-Lines file."""
    records = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict) or "event" not in record:
                raise ValueError(f"{path}:{line_no}: not a trace record")
            records.append(record)
    return records


def records_to_chrome(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert flat records to the Chrome ``trace_event`` JSON object.

    Every record becomes one *instant* event (``"ph": "i"``) with the
    simulated time in microseconds and the publishing node as both pid
    and tid, so chrome://tracing renders one track per ring node (events
    without a node -- link and engine events -- land on track 0).
    """
    trace_events: List[Dict[str, Any]] = []
    for record in records:
        args = {
            k: v for k, v in record.items() if k not in ("event", "t", "node")
        }
        node = record.get("node")
        track = node if isinstance(node, int) else 0
        trace_events.append(
            {
                "name": record["event"],
                "ph": "i",
                "s": "t",
                "ts": round(float(record.get("t", 0.0)) * 1e6, 3),
                "pid": track,
                "tid": track,
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(records: List[Dict[str, Any]], path: str) -> int:
    """Write records as a Chrome-loadable trace file; returns the count."""
    document = records_to_chrome(records)
    with open(path, "w") as fh:
        json.dump(document, fh, separators=(",", ":"))
    return len(document["traceEvents"])
