"""The Data Cyclotron system facade.

Builds the storage ring of Figure 2 -- nodes, clockwise data channels,
anti-clockwise request channels -- seeds BAT ownership, schedules the
periodic ``loadAll`` / LOIT-adaptation ticks, and runs workloads of
:class:`~repro.core.query.QuerySpec` objects to completion.

>>> from repro.core import DataCyclotron, DataCyclotronConfig, QuerySpec
>>> dc = DataCyclotron(DataCyclotronConfig(n_nodes=4))
>>> for bat_id in range(8):
...     _ = dc.add_bat(bat_id, size=1 << 20)
>>> _ = dc.submit(QuerySpec.simple(0, node=0, arrival=0.0,
...                                bat_ids=[5], processing_times=[0.01]))
>>> dc.run_until_done(max_time=10.0)
True
>>> dc.metrics.finished_count()
1
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.config import DataCyclotronConfig
from repro.core.fastforward import FastForwarder
from repro.core.query import QuerySpec, query_process
from repro.core.runtime import NodeRuntime
from repro.events import types as ev
from repro.events.bridge import attach_metrics
from repro.events.bus import Bus
from repro.events.tracer import Tracer
from repro.metrics.collector import MetricsCollector
from repro.net.topology import Ring
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

__all__ = ["DataCyclotron"]


class DataCyclotron:
    """A complete simulated Data Cyclotron deployment.

    All instrumentation flows through ``self.bus``: the facade attaches
    the :class:`MetricsCollector` as the first subscriber, then (when
    ``config.trace`` names a JSONL path) a streaming
    :class:`~repro.events.tracer.Tracer`.  Additional observers -- live
    invariant monitors, dashboards -- subscribe to the same bus without
    touching protocol code.
    """

    def __init__(
        self,
        config: Optional[DataCyclotronConfig] = None,
        metrics: Optional[MetricsCollector] = None,
        bus: Optional[Bus] = None,
        sim: Optional[Simulator] = None,
    ):
        self.config = config if config is not None else DataCyclotronConfig()
        self.bus = bus if bus is not None else Bus()
        # A shared simulator lets several rings co-exist on one clock
        # (repro.multiring); the default keeps the classic single-ring
        # deployment self-contained.
        self.sim = sim if sim is not None else Simulator(bus=self.bus)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self._detach_metrics = attach_metrics(self.bus, self.metrics)
        self.tracer: Optional[Tracer] = None
        if self.config.trace is not None:
            self.tracer = Tracer(jsonl_path=self.config.trace, keep=False)
            self.tracer.attach(self.bus)
        self.rng = RngRegistry(self.config.seed)

        self.ring = Ring(
            self.sim,
            n_nodes=self.config.n_nodes,
            bandwidth=self.config.bandwidth,
            delay=self.config.link_delay,
            data_queue_capacity=self.config.bat_queue_capacity,
            request_queue_capacity=self.config.request_queue_capacity,
            data_loss_rate=self.config.data_loss_rate,
            request_loss_rate=self.config.request_loss_rate,
            rng=self.rng.stream("loss"),
            bus=self.bus,
        )

        self.nodes: List[NodeRuntime] = [
            NodeRuntime(
                node_id=i,
                sim=self.sim,
                config=self.config,
                bus=self.bus,
                out_data=self.ring.data_channel(i),
                out_request=self.ring.request_channel(i),
            )
            for i in range(self.config.n_nodes)
        ]
        # Wire message delivery: node i receives BATs from its
        # predecessor's data channel and requests from its successor's
        # request channel.  The ring owns the wiring so it can repair the
        # topology when fault injection changes the live set.
        for i, node in enumerate(self.nodes):
            self.ring.install_node(i, node.on_bat_message, node.on_request_message)
            # Drops happen at the *sending* node's queue / channel.
            self.ring.data_channel(i).set_drop_handler(node.on_data_drop)
            self.ring.data_channel(i).set_loss_handler(node.on_data_loss)
        # The resilience manager (docs/resilience.md) interposes on the
        # request receivers before the first rewire so its liveness
        # monitors see every arrival; with resilience off nothing here
        # perturbs the paper-faithful event stream.
        self.resilience = None
        if self.config.resilience:
            from repro.resilience.manager import ResilienceManager

            self.resilience = ResilienceManager(self)
        self.ring.rewire(self.config.requests_clockwise)
        # Rotation fast-forwarding (docs/performance.md): built after the
        # wiring is final; decides per send whether a run of disinterested
        # hops can be coalesced.  Any injected fault disables it for the
        # rest of the run, so chaos scenarios execute the classic stream.
        self.ff = FastForwarder(self)
        if self.resilience is not None:
            # the failure detector's liveness monitors count raw request
            # arrivals per hop; skipping those hops would starve them
            self.ff.request_enabled = False
        if self.ff.active:
            for node in self.nodes:
                node._ff = self.ff

        self._bat_sizes: Dict[int, int] = {}
        self._bat_owner: Dict[int, int] = {}
        self._bat_replicas: Dict[int, List[int]] = {}
        self._next_owner = 0
        self._submitted = 0
        self._ticks_started = False
        # failed-but-unrepaired nodes (fail_node without repair_after_failure)
        self._unrepaired: set = set()
        self._failed_at: Dict[int, float] = {}
        # The membership view the wiring follows: every node except the
        # *acknowledged* dead (crashed or repaired-after-failure).  A
        # silently failed node stays a member until its repair, so the
        # ring keeps delivering into the corpse -- no oracle rewiring.
        self._members = set(range(self.config.n_nodes))

    # ------------------------------------------------------------------
    # data placement
    # ------------------------------------------------------------------
    def add_bat(
        self,
        bat_id: int,
        size: int,
        owner: Optional[int] = None,
        payload: Any = None,
        tag: Optional[str] = None,
    ) -> int:
        """Register a BAT with the ring; returns the owning node.

        Without an explicit ``owner`` BATs are spread round-robin, the
        paper's "randomly assigned ... uniformly distributed over all
        nodes" placement (any feasible partitioning scheme is allowed).
        """
        if bat_id in self._bat_sizes:
            raise ValueError(f"BAT {bat_id} already registered")
        if size <= 0:
            raise ValueError("BAT size must be positive")
        # a recycled id (multiring migration) may still be mid-flight
        self.ff.flush_bat(bat_id)
        if owner is None:
            owner = self._next_owner
            self._next_owner = (self._next_owner + 1) % self.config.n_nodes
        if not 0 <= owner < self.config.n_nodes:
            raise ValueError(f"owner {owner} out of range")
        self._bat_sizes[bat_id] = size
        self._bat_owner[bat_id] = owner
        # K-replica placement (docs/resilience.md): the primary plus the
        # next K-1 nodes clockwise hold a disk copy; on confirmed death
        # the first live replica is promoted to owner.
        replicas = [
            (owner + j) % self.config.n_nodes
            for j in range(self.config.replication_k)
        ]
        self._bat_replicas[bat_id] = replicas
        node = self.nodes[owner]
        node.s1.add(bat_id, size)
        if payload is not None:
            node.loader.payloads[bat_id] = payload
            for replica in replicas[1:]:
                self.nodes[replica].loader.payloads[bat_id] = payload
        if tag is not None:
            self.bus.publish(ev.BatTagged(self.sim.now, bat_id, tag))
        self.ff.set_population(len(self._bat_sizes))
        return owner

    def remove_bat(self, bat_id: int) -> Any:
        """Withdraw a BAT from this deployment; returns its payload (or None).

        Used by cross-ring fragment migration (repro.multiring).  The
        caller must have established quiescence first: no outstanding S2
        entries, no blocked pins, no disk fetch in flight.  A copy still
        circulating is retired at its (former) owner on the next pass --
        the regular swallow path of Hot Set Management.
        """
        self.ff.flush_bat(bat_id)
        owner = self._bat_owner.pop(bat_id)
        self._bat_sizes.pop(bat_id)
        replicas = self._bat_replicas.pop(bat_id, [owner])
        runtime = self.nodes[owner]
        payload = runtime.loader.payloads.pop(bat_id, None)
        for replica in replicas[1:]:
            self.nodes[replica].loader.payloads.pop(bat_id, None)
        runtime.s1.remove(bat_id)
        self.ff.set_population(len(self._bat_sizes))
        return payload

    def bat_owner(self, bat_id: int) -> int:
        return self._bat_owner[bat_id]

    def bat_replicas(self, bat_id: int) -> List[int]:
        """The BAT's replica chain (primary first) as placed at add time."""
        return list(self._bat_replicas[bat_id])

    def bat_size(self, bat_id: int) -> int:
        return self._bat_sizes[bat_id]

    def has_bat(self, bat_id: int) -> bool:
        return bat_id in self._bat_sizes

    @property
    def bat_ids(self) -> List[int]:
        return list(self._bat_sizes)

    @property
    def total_data_bytes(self) -> int:
        return sum(self._bat_sizes.values())

    # ------------------------------------------------------------------
    # workload submission
    # ------------------------------------------------------------------
    def submit(self, spec: QuerySpec) -> Process:
        """Schedule one query to register at its arrival time."""
        unknown = [b for b in spec.bat_ids if b not in self._bat_sizes]
        if unknown:
            raise ValueError(f"query {spec.query_id} references unknown BATs {unknown}")
        if not 0 <= spec.node < self.config.n_nodes:
            raise ValueError(f"query {spec.query_id} targets invalid node {spec.node}")
        self._submitted += 1
        runtime = self.nodes[spec.node]
        delay = spec.arrival - self.sim.now
        if delay < 0:
            raise ValueError(f"query {spec.query_id} arrives in the past")
        return Process(self.sim, query_process(runtime, spec), start_delay=delay)

    def submit_all(self, specs: Iterable[QuerySpec]) -> int:
        count = 0
        for spec in specs:
            self.submit(spec)
            count += 1
        return count

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _start_ticks(self) -> None:
        if self._ticks_started:
            return
        self._ticks_started = True
        total = sum(self._bat_sizes.values())
        mean_size = total / len(self._bat_sizes) if self._bat_sizes else 1024 * 1024
        self.config.note_total_data(total if total else 1024 * 1024)
        timeout = self.config.derived_resend_timeout(mean_size)
        for node in self.nodes:
            node.loss_timeout = timeout
        self.sim.post(self.config.load_all_interval, self._tick_load_all)
        self.sim.post(self.config.loit_adapt_interval, self._tick_loit)
        if self.resilience is not None:
            self.resilience.start()

    def _tick_load_all(self) -> None:
        for node in self.nodes:
            if not node.crashed:
                node.tick_load_all()
        self.sim.post(self.config.load_all_interval, self._tick_load_all)

    def _tick_loit(self) -> None:
        for node in self.nodes:
            if not node.crashed:
                node.tick_loit()
        self.sim.post(self.config.loit_adapt_interval, self._tick_loit)

    def run(self, until: float) -> None:
        """Advance the simulation to absolute time ``until``."""
        self._start_ticks()
        self.sim.run(until=until)

    def run_until_done(self, max_time: float = 3600.0, check_interval: float = 1.0) -> bool:
        """Run until every submitted query finished (or ``max_time``).

        Returns True on full completion.  The periodic ticks never drain
        the event queue on their own, so completion is polled on a
        simulated-time grid.
        """
        self._start_ticks()
        while self.sim.now < max_time:
            if self.completed_queries >= self._submitted:
                self.ff.flush_all()
                return True
            self.sim.run(until=min(self.sim.now + check_interval, max_time))
        self.ff.flush_all()
        return self.completed_queries >= self._submitted

    def detach_metrics(self) -> None:
        """Unsubscribe the MetricsCollector from the bus.

        After this the collector stops accumulating (``summary()`` goes
        stale) and metrics-only events take the no-subscriber fast path
        -- the zero-observer configuration perf baselines run in.
        """
        self._detach_metrics()

    # ------------------------------------------------------------------
    # fault injection (docs/faults.md)
    # ------------------------------------------------------------------
    def _validate_killable(self, node_id: int) -> None:
        if not 0 <= node_id < self.config.n_nodes:
            raise ValueError(f"node {node_id} out of range")
        if not self.ring.is_alive(node_id):
            raise ValueError(f"node {node_id} is already down")
        if len(self.ring.live_nodes) <= 1:
            raise ValueError("cannot crash the last live node")

    def _kill_node(self, node_id: int) -> None:
        """Physical death: volatile queues purged, runtime crashed."""
        now = self.sim.now
        # the dead node's transmit queues are volatile memory
        for msg, _size in self.ring.data_channel(node_id).purge_queue():
            self.bus.publish(ev.BatPurged(now, msg.bat_id, msg.size, node_id))
        self.ring.request_channel(node_id).purge_queue()
        self.nodes[node_id].crash()

    def _rehome_owned_bats(self, node_id: int) -> Tuple[Dict[int, int], List[int]]:
        """Apply the re-homing policy to everything ``node_id`` owned.

        Per BAT: promote the first live replica (``replication_k > 1``),
        else hand over to the live successor (``rehome_policy ==
        "successor"``, shared-storage assumption), else declare it
        unavailable.  Returns ``(rehomed {bat: adopter}, unavailable)``.
        """
        now = self.sim.now
        runtime = self.nodes[node_id]
        owned = sorted(
            bat_id for bat_id, owner in self._bat_owner.items() if owner == node_id
        )
        rehomed: Dict[int, int] = {}
        unavailable: List[int] = []
        for bat_id in owned:
            adopter_id: Optional[int] = None
            promoted = False
            if self.config.replication_k > 1:
                for candidate in self._bat_replicas.get(bat_id, []):
                    if candidate != node_id and self.ring.is_alive(candidate):
                        adopter_id = candidate
                        promoted = True
                        break
            elif self.config.rehome_policy == "successor":
                adopter_id = self.ring.live_successor(node_id)
            entry = runtime.s1.maybe(bat_id)
            if entry is None or entry.deleted:
                # deleted stubs are not re-homed; without a rescue policy
                # they are unavailable like everything else the node owned
                if adopter_id is None:
                    unavailable.append(bat_id)
                continue
            if adopter_id is None:
                unavailable.append(bat_id)
                continue
            payload = runtime.loader.payloads.pop(bat_id, None)
            runtime.s1.remove(bat_id)
            self._bat_owner[bat_id] = adopter_id
            self.bus.publish(ev.BatRehomed(now, bat_id, adopter_id))
            if promoted:
                self.bus.publish(ev.BatPromoted(now, bat_id, adopter_id))
            self.nodes[adopter_id].adopt_ownership(
                bat_id,
                size=entry.size,
                payload=payload,
                incarnation=entry.incarnation,
                version=entry.version,
            )
            rehomed[bat_id] = adopter_id
        return rehomed, unavailable

    def _notify_peer_down(
        self, node_id: int, unavailable: List[int], rehomed: List[int]
    ) -> None:
        for i, other in enumerate(self.nodes):
            if i != node_id and self.ring.is_alive(i):
                other.on_peer_down(node_id, unavailable, rehomed)

    def crash_node(self, node_id: int) -> None:
        """Kill ``node_id``: purge its queues, repair the ring around it,
        and apply the configured re-homing policy to the BATs it owned.

        This is the injector's *omniscient* crash: death, topology
        repair, re-homing and peer notification happen atomically.  The
        detector-driven alternative is :meth:`fail_node` +
        :meth:`repair_after_failure` (docs/resilience.md).

        With ``rehome_policy="successor"`` ownership moves to the live
        successor (shared-storage assumption); with ``"fail_fast"``
        requests for those BATs fail with DATA_UNAVAILABLE until rejoin.
        """
        self._validate_killable(node_id)
        self.ff.disable()
        now = self.sim.now

        # repair the topology first: traffic in flight bypasses the corpse
        self.ring.set_alive(node_id, False)
        self._members.discard(node_id)
        self.ring.rewire(self.config.requests_clockwise, members=self._members)
        self._kill_node(node_id)

        rehomed, unavailable = self._rehome_owned_bats(node_id)
        self._notify_peer_down(node_id, unavailable, sorted(rehomed))
        self.bus.publish(ev.NodeCrashed(now, node_id))

    def fail_node(self, node_id: int) -> None:
        """Kill ``node_id`` *silently*: no repair, no peer notification.

        The ring stays wired through the corpse -- traffic delivered
        into it is swallowed -- until something (normally the heartbeat
        detector) calls :meth:`repair_after_failure`.  This models a real
        crash, where no oracle tells the survivors.
        """
        self._validate_killable(node_id)
        self.ff.disable()
        now = self.sim.now
        self.ring.set_alive(node_id, False)
        self._kill_node(node_id)
        self._unrepaired.add(node_id)
        self._failed_at[node_id] = now
        self.bus.publish(ev.NodeFailed(now, node_id))

    def repair_after_failure(self, node_id: int) -> None:
        """Repair the ring around a silently-failed node.

        Rewires the topology, applies the per-BAT re-homing policy
        (replica promotion first), notifies the survivors -- failing
        pins blocked on unavailable BATs and re-issuing requests for
        re-homed ones -- and publishes :class:`~repro.events.types.RingRepaired`
        carrying the failure-to-repair latency.
        """
        if self.ring.is_alive(node_id):
            raise ValueError(f"node {node_id} is alive")
        if node_id not in self._unrepaired:
            raise ValueError(f"node {node_id} has no unrepaired failure")
        self.ff.disable()
        self._unrepaired.discard(node_id)
        now = self.sim.now
        # remove only the *confirmed* node from the membership: another
        # silently-failed corpse stays wired in until its own repair
        self._members.discard(node_id)
        self.ring.rewire(self.config.requests_clockwise, members=self._members)
        rehomed, unavailable = self._rehome_owned_bats(node_id)
        self._notify_peer_down(node_id, unavailable, sorted(rehomed))
        latency = now - self._failed_at.pop(node_id, now)
        self.bus.publish(ev.RingRepaired(now, node_id, latency))

    @property
    def unrepaired_failures(self) -> set:
        """Nodes killed by :meth:`fail_node` and not yet repaired."""
        return set(self._unrepaired)

    @property
    def members(self) -> set:
        """The membership view the wiring follows (acknowledged-dead excluded)."""
        return set(self._members)

    def wired_successor(self, node_id: int) -> int:
        """The node currently wired to receive ``node_id``'s clockwise
        traffic -- a silently-failed member, unlike ``live_successor``'s
        answer, until its death is acknowledged."""
        for step in range(1, self.config.n_nodes + 1):
            candidate = (node_id + step) % self.config.n_nodes
            if candidate in self._members:
                return candidate
        return node_id

    def rejoin_node(self, node_id: int) -> None:
        """Restart a crashed node and splice it back into the ring."""
        if not 0 <= node_id < self.config.n_nodes:
            raise ValueError(f"node {node_id} out of range")
        if self.ring.is_alive(node_id):
            raise ValueError(f"node {node_id} is already up")
        self.ff.disable()
        now = self.sim.now
        runtime = self.nodes[node_id]
        runtime.restart()
        self.ring.set_alive(node_id, True)
        self._members.add(node_id)
        self.ring.rewire(self.config.requests_clockwise, members=self._members)
        # a failed-but-undetected node that resurrects needs no repair
        self._unrepaired.discard(node_id)
        self._failed_at.pop(node_id, None)

        owned = sorted(
            bat_id for bat_id, owner in self._bat_owner.items() if owner == node_id
        )
        # the rejoiner learns the current failure state of the ring
        runtime.dead_peers = {
            i for i in range(self.config.n_nodes) if not self.ring.is_alive(i)
        }
        runtime.unavailable_bats = {
            bat_id
            for bat_id, owner in self._bat_owner.items()
            if not self.ring.is_alive(owner)
        }
        for i, other in enumerate(self.nodes):
            if i != node_id and self.ring.is_alive(i):
                other.on_peer_up(node_id, owned)
        self.bus.publish(ev.NodeRejoined(now, node_id, tuple(owned)))

    def degrade_link(
        self,
        node_id: int,
        direction: str = "data",
        bandwidth_factor: float = 1.0,
        extra_delay: float = 0.0,
        loss_rate: Optional[float] = None,
        duration: Optional[float] = None,
    ) -> None:
        """Degrade ``node_id``'s outgoing channel(s); auto-heal after
        ``duration`` seconds (None = permanent)."""
        if direction not in ("data", "request", "both"):
            raise ValueError("direction must be 'data', 'request' or 'both'")
        self.ff.disable()
        channels = []
        if direction in ("data", "both"):
            channels.append(self.ring.data_channel(node_id))
        if direction in ("request", "both"):
            channels.append(self.ring.request_channel(node_id))
        saved = [
            (ch, ch.degrade(bandwidth_factor, extra_delay, loss_rate))
            for ch in channels
        ]
        self.bus.publish(ev.LinkDegraded(self.sim.now, node_id, direction))
        if duration is not None:
            self.sim.post(duration, self._restore_links, node_id, saved)

    def _restore_links(self, node_id: int, saved) -> None:
        for ch, settings in saved:
            ch.restore(settings)
        self.bus.publish(ev.LinkRestored(self.sim.now, node_id))

    @property
    def live_node_ids(self) -> List[int]:
        return self.ring.live_nodes

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def submitted_queries(self) -> int:
        return self._submitted

    @property
    def completed_queries(self) -> int:
        return sum(n.queries_finished + n.queries_failed for n in self.nodes)

    @property
    def ring_load_bytes(self) -> float:
        """Current bytes of hot-set data in circulation (Figure 7a)."""
        return self.metrics.ring_bytes.current

    @property
    def ring_load_bats(self) -> float:
        return self.metrics.ring_bats.current

    def summary(self) -> dict:
        """Headline counters of the run so far (for reports and shells)."""
        # land any coalesced flights so link stats, forward counters and
        # the processed-event count match a classic run at this instant
        self.ff.flush_all()
        metrics = self.metrics
        lifetimes = metrics.lifetimes()
        base = {
            "simulated_seconds": round(self.sim.now, 6),
            "queries_submitted": self._submitted,
            "queries_finished": metrics.finished_count(),
            "queries_failed": sum(1 for r in metrics.queries.values() if r.failed),
            "mean_lifetime": (
                sum(lifetimes) / len(lifetimes) if lifetimes else 0.0
            ),
            "bat_loads": sum(s.loads for s in metrics.bats.values()),
            "bat_unloads": sum(s.unloads for s in metrics.bats.values()),
            "bat_messages_forwarded": metrics.bat_messages_forwarded,
            "requests_sent": metrics.requests_sent,
            "requests_absorbed": metrics.requests_absorbed,
            "resends": metrics.resends,
            "droptail_drops": metrics.droptail_drops,
            "loss_drops": metrics.loss_drops,
            "loit_changes": metrics.loit_changes,
            "ring_load_bytes": self.ring_load_bytes,
            "events_processed": self.sim.processed,
            # fault-injection outcomes (docs/faults.md)
            "queries_degraded": metrics.degraded_count(),
            "queries_unavailable": metrics.unavailable_count(),
            "crash_drops": metrics.crash_drops,
            "bats_rehomed": metrics.bats_rehomed,
            "bats_adopted": metrics.bats_adopted,
            "orphans_retired": metrics.orphans_retired,
            "total_downtime": round(metrics.total_downtime(self.sim.now), 6),
            "mean_recovery_latency": (
                round(
                    sum(metrics.recovery_latencies) / len(metrics.recovery_latencies),
                    6,
                )
                if metrics.recovery_latencies
                else 0.0
            ),
            # resilience outcomes (docs/resilience.md); all zero with
            # resilience off
            "nodes_failed": metrics.nodes_failed,
            "node_suspicions": metrics.node_suspicions,
            "nodes_confirmed_dead": metrics.nodes_confirmed_dead,
            "ring_repairs": metrics.ring_repairs,
            "mean_repair_latency": (
                round(
                    sum(metrics.repair_latencies) / len(metrics.repair_latencies), 6
                )
                if metrics.repair_latencies
                else 0.0
            ),
            "resends_abandoned": metrics.resends_abandoned,
            "bats_promoted": metrics.bats_promoted,
            "queries_retried": metrics.queries_retried,
            "queries_abandoned": metrics.queries_abandoned,
            "queries_shed": metrics.queries_shed,
            "stale_results_discarded": metrics.stale_results_discarded,
        }
        if self.resilience is not None:
            base.update(self.resilience.stats())
        return base

    def cpu_utilisation(self, horizon: Optional[float] = None) -> float:
        """Average core utilisation across the ring (Table 4, CPU%)."""
        span = horizon if horizon is not None else self.sim.now
        if span <= 0:
            return 0.0
        busy = sum(n.cores.busy_time() for n in self.nodes)
        return busy / (span * self.config.n_nodes * self.config.cores_per_node)
