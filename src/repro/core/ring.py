"""The Data Cyclotron system facade.

Builds the storage ring of Figure 2 -- nodes, clockwise data channels,
anti-clockwise request channels -- seeds BAT ownership, schedules the
periodic ``loadAll`` / LOIT-adaptation ticks, and runs workloads of
:class:`~repro.core.query.QuerySpec` objects to completion.

>>> from repro.core import DataCyclotron, DataCyclotronConfig, QuerySpec
>>> dc = DataCyclotron(DataCyclotronConfig(n_nodes=4))
>>> for bat_id in range(8):
...     _ = dc.add_bat(bat_id, size=1 << 20)
>>> _ = dc.submit(QuerySpec.simple(0, node=0, arrival=0.0,
...                                bat_ids=[5], processing_times=[0.01]))
>>> dc.run_until_done(max_time=10.0)
True
>>> dc.metrics.finished_count()
1
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.core.config import DataCyclotronConfig
from repro.core.query import QuerySpec, query_process
from repro.core.runtime import NodeRuntime
from repro.metrics.collector import MetricsCollector
from repro.net.topology import Ring
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

__all__ = ["DataCyclotron"]


class DataCyclotron:
    """A complete simulated Data Cyclotron deployment."""

    def __init__(
        self,
        config: Optional[DataCyclotronConfig] = None,
        metrics: Optional[MetricsCollector] = None,
    ):
        self.config = config if config is not None else DataCyclotronConfig()
        self.sim = Simulator()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.rng = RngRegistry(self.config.seed)

        self.ring = Ring(
            self.sim,
            n_nodes=self.config.n_nodes,
            bandwidth=self.config.bandwidth,
            delay=self.config.link_delay,
            data_queue_capacity=self.config.bat_queue_capacity,
            request_queue_capacity=self.config.request_queue_capacity,
            data_loss_rate=self.config.data_loss_rate,
            request_loss_rate=self.config.request_loss_rate,
            rng=self.rng.stream("loss"),
        )

        self.nodes: List[NodeRuntime] = [
            NodeRuntime(
                node_id=i,
                sim=self.sim,
                config=self.config,
                metrics=self.metrics,
                out_data=self.ring.data_channel(i),
                out_request=self.ring.request_channel(i),
            )
            for i in range(self.config.n_nodes)
        ]
        # Wire message delivery: node i receives BATs from its
        # predecessor's data channel and requests from its successor's
        # request channel.
        for i, node in enumerate(self.nodes):
            pred = self.ring.predecessor(i)
            succ = self.ring.successor(i)
            self.ring.data_channel(pred).set_receiver(node.on_bat_message)
            if self.config.requests_clockwise:
                # ablation: requests chase the data instead of meeting it
                self.ring.request_channel(pred).set_receiver(node.on_request_message)
            else:
                self.ring.request_channel(succ).set_receiver(node.on_request_message)
            # DropTail drops happen at the *sending* node's queue.
            self.ring.data_channel(i).set_drop_handler(node.on_data_drop)

        self._bat_sizes: Dict[int, int] = {}
        self._bat_owner: Dict[int, int] = {}
        self._next_owner = 0
        self._submitted = 0
        self._ticks_started = False

    # ------------------------------------------------------------------
    # data placement
    # ------------------------------------------------------------------
    def add_bat(
        self,
        bat_id: int,
        size: int,
        owner: Optional[int] = None,
        payload: Any = None,
        tag: Optional[str] = None,
    ) -> int:
        """Register a BAT with the ring; returns the owning node.

        Without an explicit ``owner`` BATs are spread round-robin, the
        paper's "randomly assigned ... uniformly distributed over all
        nodes" placement (any feasible partitioning scheme is allowed).
        """
        if bat_id in self._bat_sizes:
            raise ValueError(f"BAT {bat_id} already registered")
        if size <= 0:
            raise ValueError("BAT size must be positive")
        if owner is None:
            owner = self._next_owner
            self._next_owner = (self._next_owner + 1) % self.config.n_nodes
        if not 0 <= owner < self.config.n_nodes:
            raise ValueError(f"owner {owner} out of range")
        self._bat_sizes[bat_id] = size
        self._bat_owner[bat_id] = owner
        node = self.nodes[owner]
        node.s1.add(bat_id, size)
        if payload is not None:
            node.loader.payloads[bat_id] = payload
        if tag is not None:
            self.metrics.tag_bat(bat_id, tag)
        return owner

    def bat_owner(self, bat_id: int) -> int:
        return self._bat_owner[bat_id]

    def bat_size(self, bat_id: int) -> int:
        return self._bat_sizes[bat_id]

    @property
    def bat_ids(self) -> List[int]:
        return list(self._bat_sizes)

    @property
    def total_data_bytes(self) -> int:
        return sum(self._bat_sizes.values())

    # ------------------------------------------------------------------
    # workload submission
    # ------------------------------------------------------------------
    def submit(self, spec: QuerySpec) -> Process:
        """Schedule one query to register at its arrival time."""
        unknown = [b for b in spec.bat_ids if b not in self._bat_sizes]
        if unknown:
            raise ValueError(f"query {spec.query_id} references unknown BATs {unknown}")
        if not 0 <= spec.node < self.config.n_nodes:
            raise ValueError(f"query {spec.query_id} targets invalid node {spec.node}")
        self._submitted += 1
        runtime = self.nodes[spec.node]
        delay = spec.arrival - self.sim.now
        if delay < 0:
            raise ValueError(f"query {spec.query_id} arrives in the past")
        return Process(self.sim, query_process(runtime, spec), start_delay=delay)

    def submit_all(self, specs: Iterable[QuerySpec]) -> int:
        count = 0
        for spec in specs:
            self.submit(spec)
            count += 1
        return count

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _start_ticks(self) -> None:
        if self._ticks_started:
            return
        self._ticks_started = True
        total = sum(self._bat_sizes.values())
        mean_size = total / len(self._bat_sizes) if self._bat_sizes else 1024 * 1024
        self.config.note_total_data(total if total else 1024 * 1024)
        timeout = self.config.derived_resend_timeout(mean_size)
        for node in self.nodes:
            node.loss_timeout = timeout
        self.sim.schedule(self.config.load_all_interval, self._tick_load_all)
        self.sim.schedule(self.config.loit_adapt_interval, self._tick_loit)

    def _tick_load_all(self) -> None:
        for node in self.nodes:
            node.tick_load_all()
        self.sim.schedule(self.config.load_all_interval, self._tick_load_all)

    def _tick_loit(self) -> None:
        for node in self.nodes:
            node.tick_loit()
        self.sim.schedule(self.config.loit_adapt_interval, self._tick_loit)

    def run(self, until: float) -> None:
        """Advance the simulation to absolute time ``until``."""
        self._start_ticks()
        self.sim.run(until=until)

    def run_until_done(self, max_time: float = 3600.0, check_interval: float = 1.0) -> bool:
        """Run until every submitted query finished (or ``max_time``).

        Returns True on full completion.  The periodic ticks never drain
        the event queue on their own, so completion is polled on a
        simulated-time grid.
        """
        self._start_ticks()
        while self.sim.now < max_time:
            if self.completed_queries >= self._submitted:
                return True
            self.sim.run(until=min(self.sim.now + check_interval, max_time))
        return self.completed_queries >= self._submitted

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def submitted_queries(self) -> int:
        return self._submitted

    @property
    def completed_queries(self) -> int:
        return sum(n.queries_finished + n.queries_failed for n in self.nodes)

    @property
    def ring_load_bytes(self) -> float:
        """Current bytes of hot-set data in circulation (Figure 7a)."""
        return self.metrics.ring_bytes.current

    @property
    def ring_load_bats(self) -> float:
        return self.metrics.ring_bats.current

    def summary(self) -> dict:
        """Headline counters of the run so far (for reports and shells)."""
        metrics = self.metrics
        lifetimes = metrics.lifetimes()
        return {
            "simulated_seconds": round(self.sim.now, 6),
            "queries_submitted": self._submitted,
            "queries_finished": metrics.finished_count(),
            "queries_failed": sum(1 for r in metrics.queries.values() if r.failed),
            "mean_lifetime": (
                sum(lifetimes) / len(lifetimes) if lifetimes else 0.0
            ),
            "bat_loads": sum(s.loads for s in metrics.bats.values()),
            "bat_unloads": sum(s.unloads for s in metrics.bats.values()),
            "bat_messages_forwarded": metrics.bat_messages_forwarded,
            "requests_sent": metrics.requests_sent,
            "requests_absorbed": metrics.requests_absorbed,
            "resends": metrics.resends,
            "droptail_drops": metrics.droptail_drops,
            "loss_drops": metrics.loss_drops,
            "loit_changes": metrics.loit_changes,
            "ring_load_bytes": self.ring_load_bytes,
            "events_processed": self.sim.processed,
        }

    def cpu_utilisation(self, horizon: Optional[float] = None) -> float:
        """Average core utilisation across the ring (Table 4, CPU%)."""
        span = horizon if horizon is not None else self.sim.now
        if span <= 0:
            return 0.0
        busy = sum(n.cores.busy_time() for n in self.nodes)
        return busy / (span * self.config.n_nodes * self.config.cores_per_node)
