"""The two message kinds flowing around the storage ring (section 4.3).

"BAT messages contain the fields owner, bat_id, bat_size, loi, copies,
hops, and cycles. ... BAT request messages contain the variables, owner
and bat_id."  In a request message the paper's ``owner`` field denotes
the *requesting* node (the request's origin); we call it ``origin`` to
avoid confusion with the BAT's owning node.

Messages are mutable because the protocols update them in place as they
travel: every hop increments ``hops``, every node that pins the BAT
increments ``copies``, and the owner bumps ``cycles`` when the BAT
completes a rotation (Figures 4 and 5).
"""

from __future__ import annotations

from typing import Any

__all__ = ["BATMessage", "RequestMessage", "HeartbeatMessage"]


class BATMessage:
    """A data fragment travelling clockwise with its administrative header."""

    __slots__ = (
        "owner",
        "bat_id",
        "size",
        "loi",
        "copies",
        "hops",
        "cycles",
        "payload",
        "version",
        "updating",
        "incarnation",
    )

    def __init__(
        self,
        owner: int,
        bat_id: int,
        size: int,
        loi: float,
        copies: int = 0,
        hops: int = 0,
        cycles: int = 0,
        payload: Any = None,
        version: int = 0,
        updating: bool = False,
        incarnation: int = 0,
    ):
        self.owner = owner
        self.bat_id = bat_id
        self.size = size
        self.loi = loi
        self.copies = copies
        self.hops = hops
        self.cycles = cycles
        # Functional mode carries the actual column data; performance
        # experiments circulate sizes only.
        self.payload = payload
        # Multi-version update support (section 6.4).
        self.version = version
        self.updating = updating
        # Which load of this BAT the message belongs to: the owner
        # swallows returns from a previous incarnation (a copy that was
        # presumed lost but survived), keeping exactly one in flight.
        self.incarnation = incarnation

    def wire_size(self, header_size: int) -> int:
        """Bytes this message occupies on the wire / in BAT queues."""
        return self.size + header_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BAT {self.bat_id} owner={self.owner} size={self.size} "
            f"loi={self.loi:.3f} copies={self.copies} hops={self.hops} "
            f"cycles={self.cycles} v{self.version}"
            f"{' updating' if self.updating else ''}>"
        )


class RequestMessage:
    """A BAT request travelling anti-clockwise towards the BAT's owner."""

    __slots__ = ("origin", "bat_id", "hops", "min_version")

    def __init__(self, origin: int, bat_id: int, min_version: int = 0):
        self.origin = origin
        self.bat_id = bat_id
        self.hops = 0
        # Update extension (section 6.4): a reader needing at least this
        # version; 0 accepts any.
        self.min_version = min_version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Request bat={self.bat_id} origin={self.origin} hops={self.hops}>"


class HeartbeatMessage:
    """A liveness beacon piggybacked on the anti-clockwise request channel.

    Beyond the paper (docs/resilience.md): each node periodically sends a
    beacon to its live predecessor, which monitors the inter-arrival gaps
    of *any* traffic from its successor (beacons and forwarded requests
    alike) with a phi-accrual suspicion score.  The ``sender`` field lets
    the monitor discard beacons that were in flight across a topology
    change and no longer originate from the monitored successor.
    """

    __slots__ = ("sender",)

    def __init__(self, sender: int):
        self.sender = sender

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Heartbeat from={self.sender}>"
