"""The three catalog structures of the DC layer (section 4.2, Figure 2).

* **S1** -- the DC data loader's catalog of all BATs *owned* by the local
  node: their size, whether they are currently loaded into the storage
  ring, and whether a load is pending because the ring was full.
* **S2** -- the outstanding requests of the local node, organised by BAT
  identifier; each entry remembers which active queries depend on the
  BAT and which of them have already pinned it.
* **S3** -- "the identity of the BATs needed urgently as indicated by the
  pin calls": the blocked pin() calls waiting for a BAT to flow past.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.process import Future

__all__ = [
    "OwnedBat",
    "OwnedCatalog",
    "OutstandingRequest",
    "RequestTable",
    "PinWait",
    "PinTable",
]


# ----------------------------------------------------------------------
# S1: the owner-side catalog
# ----------------------------------------------------------------------
@dataclass
class OwnedBat:
    """State the DC data loader keeps per owned BAT."""

    bat_id: int
    size: int
    loaded: bool = False          # currently part of the hot set (in the ring)
    loading: bool = False         # disk fetch in flight
    pending: bool = False         # load postponed: ring was full (outcome 3)
    pending_since: float = 0.0
    loads: int = 0                # times this BAT entered the ring
    incarnation: int = 0          # increments per (re-)load; stamps messages
    last_seen: float = 0.0        # when the owner last forwarded it
    version: int = 0              # update extension (section 6.4)
    deleted: bool = False         # dropped from the database


class OwnedCatalog:
    """S1: all BATs owned by the local node."""

    def __init__(self) -> None:
        self._bats: Dict[int, OwnedBat] = {}
        # entries with the pending flag up; lets the loadAll tick skip
        # the full catalog scan when nothing is waiting (the common case)
        self.pending_count = 0

    def add(self, bat_id: int, size: int) -> OwnedBat:
        if bat_id in self._bats:
            raise ValueError(f"BAT {bat_id} already owned")
        entry = OwnedBat(bat_id=bat_id, size=size)
        self._bats[bat_id] = entry
        return entry

    def remove(self, bat_id: int) -> None:
        entry = self._bats.pop(bat_id, None)
        if entry is not None and entry.pending:
            entry.pending = False
            self.pending_count -= 1

    def note_pending(self, entry: OwnedBat) -> bool:
        """Raise the pending flag; returns False if it was already up."""
        if entry.pending:
            return False
        entry.pending = True
        self.pending_count += 1
        return True

    def note_unpending(self, entry: OwnedBat) -> None:
        if entry.pending:
            entry.pending = False
            self.pending_count -= 1

    def owns(self, bat_id: int) -> bool:
        entry = self._bats.get(bat_id)
        return entry is not None and not entry.deleted

    def get(self, bat_id: int) -> OwnedBat:
        return self._bats[bat_id]

    def maybe(self, bat_id: int) -> Optional[OwnedBat]:
        return self._bats.get(bat_id)

    def pending_oldest_first(self, mode: str = "age_size") -> List[OwnedBat]:
        """Pending loads ordered by waiting time (oldest first).

        ``loadAll`` "starts the load for the oldest ones" every T msec
        (section 4.2.3); in the paper's policy (``age_size``) ties break
        toward the smaller BAT so the queue fills greedily, matching the
        observed small-BAT bias of Fig. 7.  ``fifo`` ignores size -- the
        ablation baseline.
        """
        pending = []
        for b in self._bats.values():
            if not b.pending:
                continue
            if b.deleted:
                # deletion does not clear the flag itself; repair lazily
                b.pending = False
                self.pending_count -= 1
                continue
            pending.append(b)
        if mode == "fifo":
            pending.sort(key=lambda b: (b.pending_since, b.bat_id))
        else:
            pending.sort(key=lambda b: (b.pending_since, b.size, b.bat_id))
        return pending

    def __len__(self) -> int:
        return len(self._bats)

    def __iter__(self):
        return iter(self._bats.values())

    @property
    def loaded_bytes(self) -> int:
        return sum(b.size for b in self._bats.values() if b.loaded)


# ----------------------------------------------------------------------
# S2: outstanding requests
# ----------------------------------------------------------------------
@dataclass
class OutstandingRequest:
    """A local request for a remote BAT, shared by all interested queries."""

    bat_id: int
    registered_at: float
    sent: bool = False            # the request message left this node
    sent_at: float = 0.0
    served_at: Optional[float] = None  # first time the BAT reached this node
    last_data_seen: Optional[float] = None  # last time the BAT flowed past
    resends: int = 0
    # query id -> has that query pinned the BAT yet?
    queries: Dict[int, bool] = field(default_factory=dict)

    def all_pinned(self) -> bool:
        """Fig. 4 line 09: every associated query pinned the BAT."""
        return bool(self.queries) and all(self.queries.values())


class RequestTable:
    """S2: outstanding requests organised by BAT identifier."""

    def __init__(self) -> None:
        self._requests: Dict[int, OutstandingRequest] = {}

    def register(self, bat_id: int, query_id: int, now: float) -> OutstandingRequest:
        """Attach ``query_id`` to the request for ``bat_id``, creating it.

        Returns the entry; callers check ``sent`` to decide whether a
        request message must actually leave the node -- several queries
        share one in-flight request (the absorption of section 4.2.2).
        """
        entry = self._requests.get(bat_id)
        if entry is None:
            entry = OutstandingRequest(bat_id=bat_id, registered_at=now)
            self._requests[bat_id] = entry
        entry.queries.setdefault(query_id, False)
        return entry

    def unregister(self, bat_id: int) -> None:
        self._requests.pop(bat_id, None)

    def has(self, bat_id: int) -> bool:
        return bat_id in self._requests

    def get(self, bat_id: int) -> Optional[OutstandingRequest]:
        return self._requests.get(bat_id)

    def mark_pinned(self, bat_id: int, query_id: int) -> None:
        entry = self._requests.get(bat_id)
        if entry is not None and query_id in entry.queries:
            entry.queries[query_id] = True

    def bat_ids(self) -> List[int]:
        return list(self._requests)

    def drop_query(self, query_id: int) -> List[int]:
        """Remove a finished/aborted query from every request it joined.

        Returns the BAT ids whose requests became empty and were dropped,
        so the caller can cancel exactly those resend timers instead of
        sweeping the whole timer table.
        """
        empty = []
        for bat_id, entry in self._requests.items():
            entry.queries.pop(query_id, None)
            if not entry.queries:
                empty.append(bat_id)
        for bat_id in empty:
            del self._requests[bat_id]
        return empty

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self):
        return iter(self._requests.values())


# ----------------------------------------------------------------------
# S3: blocked pin calls
# ----------------------------------------------------------------------
@dataclass
class PinWait:
    """A pin() call blocked until its BAT flows in from the predecessor."""

    query_id: int
    future: Future
    since: float


class PinTable:
    """S3: blocked pin calls keyed by BAT identifier."""

    def __init__(self) -> None:
        self._waits: Dict[int, List[PinWait]] = {}

    def add(self, bat_id: int, wait: PinWait) -> None:
        self._waits.setdefault(bat_id, []).append(wait)

    def has_pins(self, bat_id: int) -> bool:
        """Fig. 4 line 06: ``request_has_pin_calls``."""
        return bool(self._waits.get(bat_id))

    def pop_all(self, bat_id: int) -> List[PinWait]:
        """Take (and clear) every blocked pin for ``bat_id``."""
        return self._waits.pop(bat_id, [])

    def drop_query(self, query_id: int) -> None:
        empty = []
        for bat_id, waits in self._waits.items():
            waits[:] = [w for w in waits if w.query_id != query_id]
            if not waits:
                empty.append(bat_id)
        for bat_id in empty:
            del self._waits[bat_id]

    def waiting_queries(self, bat_id: int) -> List[int]:
        return [w.query_id for w in self._waits.get(bat_id, [])]

    def bat_ids(self) -> List[int]:
        return list(self._waits)

    def __len__(self) -> int:
        return sum(len(w) for w in self._waits.values())
