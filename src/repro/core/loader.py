"""The DC data loader: the owner side of hot-set membership.

Section 4 (Figure 2): BATs "are randomly assigned to nodes in the ring
where the local DC data loader becomes their owner and administers them
in its own catalog (Structure S1).  The BAT owner node is responsible
for putting it into or pulling it out of the hot set occupying the
storage ring.  Infrequently used BATs are retained on a local disk at
the discretion of the DC data loader."

Section 4.2.3: ``loadAll()`` "executes postponed BAT loads ... Every T
msec, it starts the load for the oldest ones.  If a BAT does not fit in
the BAT queue, it tries the next one and so on until it fills up the
queue.  The leftovers stay for the next call."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.core.messages import BATMessage
from repro.core.structures import OwnedBat
from repro.events import types as ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import NodeRuntime

__all__ = ["DataLoader"]


class DataLoader:
    """Owner-side load/unload machinery of one node."""

    def __init__(self, runtime: "NodeRuntime"):
        self.runtime = runtime
        self.config = runtime.config
        self.sim = runtime.sim
        # Bytes of queue space promised to disk fetches that have not yet
        # reached the BAT queue; prevents loadAll over-committing space.
        self.reserved_bytes = 0
        # Functional mode: real column payloads keyed by bat_id.
        self.payloads: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # space accounting
    # ------------------------------------------------------------------
    def wire_size(self, entry: OwnedBat) -> int:
        return entry.size + self.config.bat_header_size

    def fits_in_queue(self, entry: OwnedBat) -> bool:
        """Outcome-4 test of Request Propagation: ``bat_can_be_loaded``."""
        used = self.runtime.out_data.queued_bytes + self.reserved_bytes
        return used + self.wire_size(entry) <= self.config.bat_queue_capacity

    def disk_fetch_time(self, size: int) -> float:
        return self.config.disk_latency + size / self.config.disk_bandwidth

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def try_load(self, bat_id: int) -> bool:
        """Load ``bat_id`` into the ring if the BAT queue has room.

        Returns True when a load started (or is already under way);
        otherwise the BAT is tagged pending (outcome 3 of Request
        Propagation) for a later ``load_all`` tick.
        """
        entry = self.runtime.s1.get(bat_id)
        if entry.deleted:
            return False
        if entry.loaded or entry.loading:
            return True
        if not self.fits_in_queue(entry):
            self.tag_pending(entry)
            return False
        self._start_fetch(entry)
        return True

    def tag_pending(self, entry: OwnedBat) -> None:
        if self.runtime.s1.note_pending(entry):
            entry.pending_since = self.sim.now
            if self.runtime.bus.active:
                self.runtime.bus.publish(
                    ev.LoadPostponed(self.sim.now, entry.bat_id, self.runtime.node_id)
                )

    def _start_fetch(self, entry: OwnedBat) -> None:
        entry.loading = True
        self.runtime.s1.note_unpending(entry)
        size = self.wire_size(entry)
        self.reserved_bytes += size
        self.sim.post(
            self.disk_fetch_time(entry.size),
            self._fetch_done,
            entry,
            self.runtime.epoch,
        )

    def _fetch_done(self, entry: OwnedBat, epoch: int) -> None:
        if epoch != self.runtime.epoch:
            # the node crashed mid-fetch; crash() zeroed the reservation
            # and restart() cleared the loading flag
            return
        size = self.wire_size(entry)
        self.reserved_bytes -= size
        entry.loading = False
        if entry.deleted:
            return
        entry.incarnation += 1
        message = BATMessage(
            owner=self.runtime.node_id,
            bat_id=entry.bat_id,
            size=entry.size,
            loi=self.config.initial_loi,
            payload=self.payloads.get(entry.bat_id),
            version=entry.version,
            incarnation=entry.incarnation,
        )
        entry.loaded = True
        entry.loads += 1
        self.runtime.note_bat_forwarded(entry)
        if self.runtime.bus.active:
            self.runtime.bus.publish(
                ev.BatLoaded(self.sim.now, entry.bat_id, entry.size, self.runtime.node_id)
            )
        self.runtime.forward_bat(message)

    # ------------------------------------------------------------------
    # the periodic loadAll tick (section 4.2.3)
    # ------------------------------------------------------------------
    def load_all(self) -> int:
        """Start every pending load that currently fits; returns how many."""
        s1 = self.runtime.s1
        if s1.pending_count == 0:
            return 0
        started = 0
        for entry in s1.pending_oldest_first(self.config.load_priority):
            if entry.loaded or entry.loading:
                s1.note_unpending(entry)
                continue
            if self.fits_in_queue(entry):
                self._start_fetch(entry)
                started += 1
            # else: leftovers stay for the next call
        return started

    # ------------------------------------------------------------------
    # unloading (Hot Set Management, Figure 5)
    # ------------------------------------------------------------------
    def unload(self, entry: OwnedBat) -> None:
        """Pull the BAT out of circulation; it stays on the local disk."""
        entry.loaded = False
        if self.runtime.bus.active:
            self.runtime.bus.publish(
                ev.BatUnloaded(self.sim.now, entry.bat_id, entry.size, self.runtime.node_id)
            )
