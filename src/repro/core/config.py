"""All Data Cyclotron tunables, defaulting to the paper's setup.

Section 5 ("Setup"): ten nodes, duplex links of 10 Gb/s with 350 us
delay and DropTail queues, 200 MB of BAT-queue buffer per node (2 GB of
ring capacity), an 8 GB data set of 1000 BATs of 1-10 MB.  Section 5.2
defines the adaptive LOIT ladder {0.1, 0.6, 1.1} with the 80 % / 40 %
buffer-load watermarks.  Section 5.4 models four cores per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["DataCyclotronConfig", "MB", "GBIT"]

MB = 1024 * 1024
GBIT = 1e9 / 8  # bytes/second for 1 Gb/s


@dataclass
class DataCyclotronConfig:
    """Configuration of a Data Cyclotron ring.

    The defaults reproduce the paper's simulation setup; experiments
    override only what their section changes (e.g. a static LOIT for the
    section 5.1 sweep).
    """

    # --- topology / network (section 5, Setup) -----------------------
    n_nodes: int = 10
    bandwidth: float = 10 * GBIT            # bytes per second per link
    link_delay: float = 350e-6              # propagation delay, seconds
    bat_queue_capacity: int = 200 * MB      # per-node network buffer
    request_queue_capacity: Optional[int] = None  # requests are tiny
    request_message_size: int = 64          # bytes on the wire
    bat_header_size: int = 64               # administrative header bytes
    data_loss_rate: float = 0.0             # injected loss, data channel
    request_loss_rate: float = 0.0          # injected loss, request channel

    # --- LOIT: the level-of-interest threshold (sections 4.4, 5.1-5.2)
    loit_static: Optional[float] = None     # fixed threshold; disables adaptation
    loit_levels: Tuple[float, ...] = (0.1, 0.6, 1.1)
    loit_initial_level: int = 0
    loit_high_watermark: float = 0.80       # buffer load above -> step up
    loit_low_watermark: float = 0.40        # buffer load below -> step down
    loit_adapt_interval: float = 0.25       # seconds between controller ticks
    initial_loi: float = 1.0                # LOI of a freshly loaded BAT

    # --- loader / pending loads (section 4.2.3) ----------------------
    load_all_interval: float = 0.05         # "every T msec" loadAll tick
    disk_bandwidth: float = 400 * MB        # the paper's RAID reference rate
    disk_latency: float = 5e-3              # per-access seek/dispatch cost

    # --- loss recovery (section 4.2.3) --------------------------------
    resend_timeout: Optional[float] = None  # None -> derived from ring size
    resend_timeout_factor: float = 4.0      # x estimated rotational delay
    # Escalation beyond the paper (docs/faults.md): each resend multiplies
    # the timeout by ``resend_backoff_base`` (capped at ``_cap`` times the
    # base timeout); 1.0 keeps the paper's fixed-interval behaviour.
    # After ``max_resends`` unanswered resends the request gives up and
    # the blocked queries fail with DATA_UNAVAILABLE; None retries forever.
    resend_backoff_base: float = 1.0
    resend_backoff_cap: float = 8.0
    max_resends: Optional[int] = None

    # --- fault tolerance (fault-injection subsystem, docs/faults.md) ---
    # What happens to BATs owned by a crashed node: "fail_fast" fails
    # pending and future requests with DATA_UNAVAILABLE until the owner
    # rejoins; "successor" re-homes ownership to the live successor,
    # which reloads them from shared storage on demand.
    rehome_policy: str = "fail_fast"

    # --- resilience subsystem (docs/resilience.md) ---------------------
    # Off by default: with ``resilience=False`` nothing below schedules a
    # single event, keeping the paper-faithful event stream bit-identical
    # (the golden-equivalence test relies on it).
    resilience: bool = False
    # Failure detector: each node beacons to its live predecessor every
    # ``heartbeat_interval`` seconds; the predecessor keeps a sliding
    # window of inter-arrival gaps and scores phi = log10(e)*elapsed/mean
    # (exponential phi-accrual).  Crossing ``phi_suspect`` publishes
    # NodeSuspected; crossing ``phi_confirm`` publishes NodeConfirmedDead
    # and triggers the detector-driven ring repair.
    heartbeat_interval: float = 0.05
    heartbeat_window: int = 16
    phi_suspect: float = 1.5
    phi_confirm: float = 3.0
    # K-replica BAT ownership: every BAT gets K-1 replica owners placed
    # round-robin clockwise of the primary; on confirmed death the first
    # live replica is promoted.  K=1 keeps single ownership.
    replication_k: int = 1
    # Query retry/failover: attempts are capped, spaced by exponential
    # backoff with +-``retry_jitter`` relative jitter, and bounded by a
    # per-query deadline (seconds from first arrival; None = none).
    # ``retry_attempt_timeout`` abandons an attempt that shows no outcome
    # in time and re-dispatches; the superseded attempt's eventual result
    # is discarded by epoch tagging.
    retry_max_attempts: int = 4
    retry_backoff_initial: float = 0.2
    retry_backoff_base: float = 2.0
    retry_backoff_cap: float = 2.0
    retry_jitter: float = 0.25
    retry_deadline: Optional[float] = None
    retry_attempt_timeout: Optional[float] = None
    # Cluster-wide retry token bucket (docs/overload.md): every
    # re-dispatch (attempt >= 2) consumes one token; an empty bucket
    # fails the query terminally instead of amplifying load on a
    # degraded ring.  ``None`` capacity keeps retries unlimited (the
    # pre-budget behaviour); ``retry_budget_refill`` adds tokens/second.
    retry_budget_capacity: Optional[float] = None
    retry_budget_refill: float = 0.0
    # Admission valve: shed (fast-fail) new queries while at least this
    # fraction of the ring is known-dead or under suspicion.
    admission_suspect_fraction: float = 0.5

    # --- node resources ----------------------------------------------
    local_memory_bytes: Optional[int] = None  # pinned-BAT budget; None = ample
    cores_per_node: int = 4
    cpu_constrained: bool = False           # True only for the TPC-H experiment

    # --- network technology (section 2, Figure 1) ---------------------
    # "rdma" (the paper's design point), "offload" or "legacy": non-RDMA
    # modes charge the Figure 1 host CPU overhead for every BAT a node
    # puts on the wire, competing with query processing for the cores.
    transfer_mode: str = "rdma"
    host_cpu_ghz: float = 2.33 * 4          # the paper's quad-core testbed

    # --- ablation switches (paper behaviour by default) ----------------
    request_absorption: bool = True         # outcome 5 of Request Propagation
    load_priority: str = "age_size"         # loadAll order: "age_size" | "fifo"
    requests_clockwise: bool = False        # paper: requests go anti-clockwise

    # --- performance (docs/performance.md) -----------------------------
    # Coalesce runs of disinterested ring hops into one analytically
    # computed arrival (repro.core.fastforward).  Externally observable
    # behaviour is identical on or off; golden/event-count tests pin the
    # classic path by turning it off.
    fast_forward: bool = True

    # --- bookkeeping ---------------------------------------------------
    seed: int = 0
    metrics_time_bin: float = 1.0           # seconds per time-series bin
    # JSONL event-trace path; None disables tracing (docs/events.md).
    trace: Optional[str] = None
    _total_data_bytes: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.bandwidth <= 0 or self.link_delay < 0:
            raise ValueError("invalid link parameters")
        if self.bat_queue_capacity <= 0:
            raise ValueError("bat_queue_capacity must be positive")
        if not self.loit_levels:
            raise ValueError("loit_levels cannot be empty")
        if any(b <= a for a, b in zip(self.loit_levels, self.loit_levels[1:])):
            raise ValueError("loit_levels must be strictly increasing")
        if not (0 <= self.loit_low_watermark < self.loit_high_watermark <= 1):
            raise ValueError("watermarks must satisfy 0 <= low < high <= 1")
        if not 0 <= self.loit_initial_level < len(self.loit_levels):
            raise ValueError("loit_initial_level out of range")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if self.load_priority not in ("age_size", "fifo"):
            raise ValueError("load_priority must be 'age_size' or 'fifo'")
        if self.rehome_policy not in ("fail_fast", "successor"):
            raise ValueError("rehome_policy must be 'fail_fast' or 'successor'")
        if self.resend_backoff_base < 1.0:
            raise ValueError("resend_backoff_base must be >= 1.0")
        if self.resend_backoff_cap < 1.0:
            raise ValueError("resend_backoff_cap must be >= 1.0")
        if self.max_resends is not None and self.max_resends < 1:
            raise ValueError("max_resends must be >= 1 (or None)")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_window < 1:
            raise ValueError("heartbeat_window must be >= 1")
        if not 0 < self.phi_suspect <= self.phi_confirm:
            raise ValueError("need 0 < phi_suspect <= phi_confirm")
        if not 1 <= self.replication_k <= self.n_nodes:
            raise ValueError("replication_k must be in [1, n_nodes]")
        if self.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be >= 1")
        if self.retry_backoff_initial < 0 or self.retry_backoff_base < 1.0:
            raise ValueError("invalid retry backoff parameters")
        if self.retry_backoff_cap < self.retry_backoff_initial:
            raise ValueError("retry_backoff_cap must be >= retry_backoff_initial")
        if not 0 <= self.retry_jitter < 1:
            raise ValueError("retry_jitter must be in [0, 1)")
        if self.retry_deadline is not None and self.retry_deadline <= 0:
            raise ValueError("retry_deadline must be positive (or None)")
        if self.retry_attempt_timeout is not None and self.retry_attempt_timeout <= 0:
            raise ValueError("retry_attempt_timeout must be positive (or None)")
        if self.retry_budget_capacity is not None and self.retry_budget_capacity <= 0:
            raise ValueError("retry_budget_capacity must be positive (or None)")
        if self.retry_budget_refill < 0:
            raise ValueError("retry_budget_refill cannot be negative")
        if not 0 < self.admission_suspect_fraction <= 1:
            raise ValueError("admission_suspect_fraction must be in (0, 1]")
        if self.resilience and self.requests_clockwise:
            raise ValueError(
                "resilience monitors the anti-clockwise request channel; "
                "it is incompatible with the requests_clockwise ablation"
            )
        if self.transfer_mode not in ("rdma", "offload", "legacy"):
            raise ValueError("transfer_mode must be 'rdma', 'offload' or 'legacy'")
        if self.host_cpu_ghz <= 0:
            raise ValueError("host_cpu_ghz must be positive")

    def network_cpu_factor(self) -> float:
        """CPU-core-seconds burnt per second of wire transmission.

        Figure 1's host-cost model at the configured line rate: RDMA is
        near zero; the legacy stack needs ~1 GHz per Gb/s, enough to
        saturate the paper's quad-core at 10 Gb/s.
        """
        from repro.net.hostmodel import HostCostModel, TransferMode

        if self.transfer_mode == "rdma":
            # "the CPU(s) of neither host are involved in the data
            # transfer" (section 2.1): the RNIC does everything
            return 0.0
        mode = {
            "offload": TransferMode.OFFLOAD,
            "legacy": TransferMode.LEGACY,
        }[self.transfer_mode]
        model = HostCostModel(cpu_ghz=self.host_cpu_ghz)
        gbps = self.bandwidth * 8 / 1e9
        # fraction of the whole host, scaled to core-seconds
        return model.cpu_load(mode, gbps) * self.cores_per_node

    # ------------------------------------------------------------------
    def derived_resend_timeout(self, mean_bat_size: float) -> float:
        """Resend timeout from the estimated ring rotational delay.

        The paper triggers ``resend()`` "by a timeout on the rotational
        delay for BATs requested into the storage ring" (section 4.2.3).
        A rotation costs, per hop, the BAT's serialisation time plus the
        link delay -- *plus queueing behind everything else in the BAT
        queues*: with a loaded ring, a BAT waits for up to a full queue
        of predecessors at every hop, so the worst-case rotation is
        bounded by draining the whole ring capacity through one link.
        Under-estimating this made owners falsely declare circulating
        BATs lost and flood the ring with duplicates.
        """
        if self.resend_timeout is not None:
            return self.resend_timeout
        per_hop = mean_bat_size / self.bandwidth + self.link_delay
        loaded_rotation = (
            self._circulating_bound() / self.bandwidth
            + self.n_nodes * self.link_delay
        )
        rotation = max(self.n_nodes * per_hop, loaded_rotation)
        return max(self.resend_timeout_factor * rotation, 0.1)

    def _circulating_bound(self) -> float:
        """Upper bound on bytes that can be in flight at once.

        The ring holds at most its aggregate queue capacity -- but never
        more than the whole database (set via :meth:`note_total_data`).
        """
        if self._total_data_bytes is not None:
            return min(self.ring_capacity, self._total_data_bytes)
        return self.ring_capacity

    def note_total_data(self, total_bytes: int) -> None:
        """Tell the config how much data exists, tightening timeouts."""
        self._total_data_bytes = total_bytes

    @property
    def ring_capacity(self) -> int:
        """Total BAT-queue bytes across the ring (2 GB in the paper)."""
        return self.n_nodes * self.bat_queue_capacity
