"""The per-node Data Cyclotron runtime: the control centre of Figure 2.

One :class:`NodeRuntime` instance per ring node serves the three message
streams of section 4.2: (a) requests from the local DBMS instance, (b)
the predecessor's BATs, and (c) the successor's requests.  It implements

* the **Request Propagation** algorithm (Figure 3, six outcomes),
* the **BAT Propagation** algorithm (Figure 4),
* **Hot Set Management** with the LOI recomputation (Figure 5, Eq. 1),
* the DBMS-layer API ``request() / pin() / unpin()`` injected into query
  plans by the DC optimizer (section 4.1, Table 2),
* the robustness machinery of section 4.2.3: ``resend()`` timeouts for
  lost requests, lazy detection of BATs lost to DropTail, and the
  periodic ``loadAll`` / LOIT-adaptation ticks,
* the fault-tolerance extension beyond the paper (docs/faults.md):
  crash/restart lifecycle, dead-peer tracking with the
  ``DATA_UNAVAILABLE`` query outcome, adoption of circulating copies
  whose owner died, and exponential resend backoff with escalation.

Every observable protocol action is published as a typed event on the
deployment's :class:`~repro.events.bus.Bus` (docs/events.md); metrics,
tracing and invariant checking are subscribers, not call sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.config import DataCyclotronConfig
from repro.core.loader import DataLoader
from repro.core.loi import LoitController, new_loi
from repro.core.messages import BATMessage, RequestMessage
from repro.core.structures import (
    OutstandingRequest,
    OwnedCatalog,
    PinTable,
    PinWait,
    RequestTable,
)
from repro.events import types as ev
from repro.events.bus import Bus
from repro.net.channel import Channel
from repro.sim.engine import Event, Simulator
from repro.sim.process import Future
from repro.sim.timeline import CoreTimeline

__all__ = ["NodeRuntime", "PinResult", "CachedBat", "DATA_UNAVAILABLE", "NODE_CRASHED"]

# Query-failure outcomes introduced by the fault-injection subsystem.
# DATA_UNAVAILABLE: the BAT's owner is dead and the BAT was not re-homed.
# NODE_CRASHED: the query was running on a node that crashed.
DATA_UNAVAILABLE = "DATA_UNAVAILABLE"
NODE_CRASHED = "NODE_CRASHED"


@dataclass
class PinResult:
    """Resolution value of a pin() future."""

    ok: bool
    bat_id: int
    payload: Any = None
    version: int = 0
    error: Optional[str] = None


@dataclass
class CachedBat:
    """A BAT held in local DBMS memory while one or more queries pin it.

    The DC runtime hands a passing BAT over "as a pointer to a memory
    mapped region.  This memory region is freed by the unpin() call"
    (section 4.2.2) -- modelled as a refcount that eviction waits on.
    """

    bat_id: int
    size: int
    payload: Any = None
    refcount: int = 0
    version: int = 0


class NodeRuntime:
    """DBMS layer + DC layer + network layer of a single ring node."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        config: DataCyclotronConfig,
        bus: Bus,
        out_data: Channel,
        out_request: Channel,
    ):
        self.node_id = node_id
        self.sim = sim
        self.config = config
        self.bus = bus
        self.out_data = out_data          # clockwise, to the successor
        self.out_request = out_request    # anti-clockwise, to the predecessor

        # the three catalog structures of Figure 2
        self.s1 = OwnedCatalog()
        self.s2 = RequestTable()
        self.s3 = PinTable()

        self.loader = DataLoader(self)
        self.loit = LoitController(
            levels=config.loit_levels,
            initial_level=config.loit_initial_level,
            high_watermark=config.loit_high_watermark,
            low_watermark=config.loit_low_watermark,
            static=config.loit_static,
        )
        self.loit_history: List[Tuple[float, float]] = [(0.0, self.loit.threshold)]

        # local DBMS memory holding pinned BATs
        self.cache: Dict[int, CachedBat] = {}
        self.pinned_bytes = 0
        self._local_fetches: Dict[int, List[Future]] = {}

        # CPU model (only the TPC-H experiment constrains cores); the
        # plain counter tracks demand even in unconstrained mode
        self.cores = CoreTimeline(config.cores_per_node)
        self.cpu_seconds = 0.0
        # section 2 / Figure 1: non-RDMA stacks burn CPU per transfer
        self.network_cpu_factor = config.network_cpu_factor()
        self.network_cpu_seconds = 0.0

        # loss recovery
        self.loss_timeout = 1.0  # overwritten by the ring facade
        self._resend_timers: Dict[int, Event] = {}

        # rotation fast-forwarding (repro.core.fastforward), injected by
        # the facade when config.fast_forward is on
        self._ff = None

        # fault tolerance (docs/faults.md)
        self.crashed = False
        # bumped on every crash and restart; in-flight disk fetches from
        # an earlier epoch are discarded when they complete
        self.epoch = 0
        self.dead_peers: Set[int] = set()
        # BATs owned by a dead node and not re-homed: requests fail fast
        self.unavailable_bats: Set[int] = set()

        self.queries_finished = 0
        self.queries_failed = 0

    # ==================================================================
    # the DBMS-layer API (section 4.1): request / pin / unpin
    # ==================================================================
    def request(self, query_id: int, bat_ids: List[int]) -> None:
        """The request() call the DC optimizer injects for every bind.

        Owned BATs need no ring traffic -- "if the BAT is owned by the
        local DC data loader, it is retrieved from disk or local memory
        and put into the DBMS space" at pin time.  For remote BATs the
        call updates S2 and sends one request message anti-clockwise per
        BAT not already in flight (section 4.2.1).
        """
        if self.crashed:
            return  # the DBMS instance is gone; pin() reports the failure
        now = self.sim.now
        ff = self._ff
        for bat_id in bat_ids:
            if self.s1.owns(bat_id):
                continue
            if bat_id in self.unavailable_bats:
                continue  # fail fast at pin time, no ring traffic
            if ff is not None:
                # a new S2 entry makes this node a stop for in-flight
                # fast-forwarded traffic: land it before registering
                ff.flush_bat(bat_id, self.node_id)
            entry = self.s2.register(bat_id, query_id, now)
            if not entry.sent:
                self._send_request(entry)

    def pin(self, query_id: int, bat_id: int) -> Future:
        """Blocking data access: resolves when the BAT is in local memory.

        Checks the local cache first (another query may hold the BAT
        pinned); owned BATs are fetched from the local disk; everything
        else blocks in S3 until the BAT flows in from the predecessor.
        """
        fut = Future(self.sim)
        now = self.sim.now

        if self.crashed:
            fut.resolve(PinResult(False, bat_id, error=NODE_CRASHED))
            return fut

        cached = self.cache.get(bat_id)
        if cached is not None:
            cached.refcount += 1
            if self.bus.active:
                self.bus.publish(ev.BatPinned(now, bat_id, self.node_id))
            self._note_query_pinned(bat_id, query_id)
            fut.resolve(
                PinResult(True, bat_id, cached.payload, cached.version)
            )
            return fut

        if self.s1.owns(bat_id):
            self._local_fetch(bat_id, fut)
            return fut

        if bat_id in self.unavailable_bats:
            # the owner is dead and the BAT was not re-homed: fail fast
            if self.bus.active:
                self.bus.publish(ev.RequestUnavailable(now, bat_id, self.node_id))
            fut.resolve(PinResult(False, bat_id, error=DATA_UNAVAILABLE))
            return fut

        # Remote BAT: make sure a request is outstanding (a pin without a
        # prior request() is legal, just slower) and block in S3.
        if self._ff is not None:
            self._ff.flush_bat(bat_id, self.node_id)
        entry = self.s2.register(bat_id, query_id, now)
        if not entry.sent:
            self._send_request(entry)
        self.s3.add(bat_id, PinWait(query_id=query_id, future=fut, since=now))
        return fut

    def unpin(self, query_id: int, bat_id: int) -> None:
        """Release a pinned BAT; frees the memory region at refcount zero."""
        cached = self.cache.get(bat_id)
        if cached is None:
            return
        cached.refcount -= 1
        if cached.refcount <= 0:
            del self.cache[bat_id]
            self.pinned_bytes -= cached.size

    def finish_query(self, query_id: int, failed: bool = False, error: str = "") -> None:
        """Last-unpin bookkeeping: drop the query from S2 and S3."""
        self.s3.drop_query(query_id)
        for bat_id in self.s2.drop_query(query_id):
            self._cancel_resend(bat_id)
        if failed:
            self.queries_failed += 1
            if self.bus.active:
                self.bus.publish(
                    ev.QueryFailed(self.sim.now, query_id, error, self.node_id)
                )
        else:
            self.queries_finished += 1
            if self.bus.active:
                self.bus.publish(ev.QueryFinished(self.sim.now, query_id, self.node_id))

    def exec_op(self, duration: float) -> Future:
        """Execute one relational operator for ``duration`` CPU seconds.

        With ``cpu_constrained`` (the TPC-H experiment, section 5.4) the
        operator occupies one of the node's cores on the earliest-free
        timeline; otherwise it simply takes ``duration`` of wall time.
        """
        fut = Future(self.sim)
        if duration <= 0:
            fut.resolve(None)
            return fut
        self.cpu_seconds += duration
        if self.config.cpu_constrained:
            _core, _start, end = self.cores.schedule(self.sim.now, duration)
            self.sim.post_at(end, fut.resolve, None)
        else:
            self.sim.post(duration, fut.resolve, None)
        return fut

    # ==================================================================
    # network-layer entry points
    # ==================================================================
    def on_request_message(self, msg: RequestMessage, _size: int) -> None:
        """Request Propagation (Figure 3)."""
        if self.crashed:
            return  # delivered into a dead node: the request is lost
        msg.hops += 1
        now = self.sim.now

        # Outcome 1: the request circled back to its origin -- the BAT
        # does not exist (anymore), or its owner is dead and nobody
        # re-homed it; associated queries raise an exception.
        if msg.origin == self.node_id:
            if self.bus.active:
                self.bus.publish(
                    ev.RequestReturnedToOrigin(now, msg.bat_id, self.node_id)
                )
            if msg.bat_id in self.unavailable_bats:
                if self.bus.active:
                    self.bus.publish(
                        ev.RequestUnavailable(now, msg.bat_id, self.node_id)
                    )
                self._fail_request(msg.bat_id, DATA_UNAVAILABLE)
            else:
                self._fail_request(msg.bat_id, "BAT does not exist")
            return

        # Outcomes 2-4: this node owns the BAT.
        if self.s1.owns(msg.bat_id):
            entry = self.s1.get(msg.bat_id)
            if entry.loaded:
                # Lazy loss detection: if the BAT has not come around for
                # far longer than a rotation, it was dropped in transit.
                if now - entry.last_seen > self.loss_timeout:
                    entry.loaded = False
                else:
                    return  # outcome 2: already in the hot set
            if entry.loading:
                return
            self.loader.try_load(msg.bat_id)  # outcomes 3 (pending) / 4 (load)
            return

        # Outcome 5: same request outstanding locally -> absorb it.
        local = self.s2.get(msg.bat_id) if self.config.request_absorption else None
        if local is not None:
            if not local.sent:
                # the passing request doubles as ours
                local.sent = True
                local.sent_at = now
                self._arm_resend(local)
            if self.bus.active:
                self.bus.publish(ev.RequestAbsorbed(now, msg.bat_id, self.node_id))
            return

        # Outcome 6: just forward it anti-clockwise.
        if self.bus.active:
            self.bus.publish(ev.RequestForwarded(now, msg.bat_id, self.node_id))
        self._ship_request(msg)

    def on_bat_message(self, msg: BATMessage, _size: int) -> None:
        """Dispatch of section 4.3: owner -> Hot Set Management, else
        BAT Propagation.  Copies whose owner died take the orphan path
        (adoption by the re-homed owner, or retirement)."""
        if self.crashed:
            # delivered into a dead node's memory: the copy is lost; the
            # owner's lazy loss detection will reload it
            if self.bus.active:
                self.bus.publish(
                    ev.BatPurged(self.sim.now, msg.bat_id, msg.size, self.node_id)
                )
            return
        if msg.owner == self.node_id:
            self._hot_set_management(msg)
        elif msg.owner in self.dead_peers:
            self._handle_orphan(msg)
        else:
            self._bat_propagation(msg)

    def on_data_drop(self, msg: BATMessage, _size: int) -> None:
        """DropTail discarded a BAT from the full transmit queue."""
        if self.bus.active:
            self.bus.publish(
                ev.BatDropped(self.sim.now, msg.bat_id, msg.size, False, self.node_id)
            )

    def on_data_loss(self, msg: BATMessage, _size: int) -> None:
        """Loss injection ate a BAT this node tried to forward."""
        if self.bus.active:
            self.bus.publish(
                ev.BatDropped(self.sim.now, msg.bat_id, msg.size, True, self.node_id)
            )

    # ==================================================================
    # the core algorithms
    # ==================================================================
    def _bat_propagation(self, msg: BATMessage) -> None:
        """Figure 4: serve local pins, update the header, forward."""
        msg.hops += 1
        bat_id = msg.bat_id
        req = self.s2.get(bat_id)
        if req is not None:
            req.sent = True  # data arriving satisfies the in-flight request
            req.last_data_seen = self.sim.now
            if self.s3.has_pins(bat_id) and self._memory_admits(msg.size):
                msg.copies += 1
                if self.bus.active:
                    self.bus.publish(ev.BatTouched(self.sim.now, bat_id, self.node_id))
                self._serve_pins(msg, req)
            if req.all_pinned():
                self.s2.unregister(bat_id)
                self._cancel_resend(bat_id)
        self.forward_bat(msg)

    def _hot_set_management(self, msg: BATMessage) -> None:
        """Figure 5: the owner recomputes the LOI and keeps or unloads."""
        entry = self.s1.maybe(msg.bat_id)
        if entry is None or entry.deleted or not entry.loaded:
            # Owned BAT came back after deletion or after being declared
            # lost; swallow it rather than circulate a ghost.
            if self.bus.active:
                self.bus.publish(
                    ev.BatUnloaded(self.sim.now, msg.bat_id, msg.size, self.node_id)
                )
            return
        if msg.incarnation != entry.incarnation:
            # a presumed-lost copy survived a reload: retire the stale
            # incarnation so exactly one copy stays in flight
            if self.bus.active:
                self.bus.publish(
                    ev.BatUnloaded(self.sim.now, msg.bat_id, msg.size, self.node_id)
                )
            return
        if msg.version != entry.version:
            # A stale version returned after an update (section 6.4): the
            # owner retires it and circulates the current version instead.
            if self.bus.active:
                self.bus.publish(
                    ev.BatUnloaded(self.sim.now, msg.bat_id, msg.size, self.node_id)
                )
            entry.loaded = False
            self.loader.try_load(msg.bat_id)
            return
        msg.cycles += 1
        if self.bus.active:
            self.bus.publish(
                ev.BatCycled(self.sim.now, msg.bat_id, msg.cycles, self.node_id)
            )
        updated = new_loi(msg.loi, msg.copies, msg.hops, msg.cycles)
        msg.copies = 0
        msg.hops = 0
        if not self.loit.is_hot(updated):
            self.loader.unload(entry)
            return
        msg.loi = updated
        self.note_bat_forwarded(entry)
        self.forward_bat(msg)

    def _handle_orphan(self, msg: BATMessage) -> None:
        """A circulating copy whose owner died (docs/faults.md).

        The re-homed owner adopts the copy as a fresh incarnation and
        keeps it in the ring; every other node serves its blocked pins
        one last time and pulls the copy out of circulation so orphans
        cannot cycle forever.
        """
        msg.hops += 1
        now = self.sim.now
        entry = self.s1.maybe(msg.bat_id)
        if entry is not None and not entry.deleted:
            # this node adopted ownership of the BAT
            if entry.loaded or entry.loading:
                # a fresh incarnation already circulates: retire the stale copy
                if self.bus.active:
                    self.bus.publish(
                        ev.OrphanRetired(now, msg.bat_id, msg.size, self.node_id)
                    )
                return
            entry.incarnation += 1
            entry.loaded = True
            msg.owner = self.node_id
            msg.incarnation = entry.incarnation
            msg.version = entry.version
            msg.copies = 0
            msg.hops = 0
            if self.bus.active:
                self.bus.publish(ev.BatAdopted(now, msg.bat_id, self.node_id))
            self.note_bat_forwarded(entry)
            self.forward_bat(msg)
            return
        # not the adopter: degraded last-chance service, then retirement
        req = self.s2.get(msg.bat_id)
        if (
            req is not None
            and self.s3.has_pins(msg.bat_id)
            and self._memory_admits(msg.size)
        ):
            msg.copies += 1
            if self.bus.active:
                self.bus.publish(ev.BatTouched(now, msg.bat_id, self.node_id))
            self._serve_pins(msg, req, degraded=True)
            if req.all_pinned():
                self.s2.unregister(msg.bat_id)
                self._cancel_resend(msg.bat_id)
        if self.bus.active:
            self.bus.publish(ev.OrphanRetired(now, msg.bat_id, msg.size, self.node_id))

    def forward_bat(self, msg: BATMessage) -> None:
        """Enqueue a BAT for the successor; accounts loss-injected drops.

        Under a non-RDMA ``transfer_mode`` the send also charges the
        Figure 1 host CPU overhead (data copying, context switches,
        stack processing), stealing core time from query execution --
        the cost the paper's RDMA design avoids.
        """
        wire = msg.wire_size(self.config.bat_header_size)
        if self.network_cpu_factor > 1e-12:
            overhead = (wire / self.config.bandwidth) * self.network_cpu_factor
            self.network_cpu_seconds += overhead
            if self.config.cpu_constrained:
                self.cores.schedule(self.sim.now, overhead)
        # Drops are accounted by the channel callbacks: loss injection
        # via on_data_loss, DropTail via on_data_drop.  Inferring the
        # drop kind from the boolean here double-counted DropTail drops
        # as loss drops whenever both mechanisms were active.
        ff = self._ff
        if ff is not None and ff.bat_scan_ok and ff.send_bat(self, msg, wire):
            # the flight's first hop is a pristine idle channel, so the
            # classic send below would have succeeded
            if self.bus.active:
                self.bus.publish(ev.BatForwarded(self.sim.now, msg.bat_id, self.node_id))
            return
        if self.out_data.send(msg, wire):
            if self.bus.active:
                self.bus.publish(ev.BatForwarded(self.sim.now, msg.bat_id, self.node_id))

    def note_bat_forwarded(self, entry) -> None:
        entry.last_seen = self.sim.now

    # ==================================================================
    # pin service
    # ==================================================================
    def _memory_admits(self, size: int) -> bool:
        """Section 4.2.2: without local memory space "the BAT will
        continue its journey and the queries waiting for it remain
        blocked for one more cycle"."""
        budget = self.config.local_memory_bytes
        if budget is None:
            return True
        return self.pinned_bytes + size <= budget

    def _serve_pins(
        self, msg: BATMessage, req: OutstandingRequest, degraded: bool = False
    ) -> None:
        now = self.sim.now
        waits = self.s3.pop_all(msg.bat_id)
        if not waits:
            return
        degraded = degraded or req.resends > 0
        cached = CachedBat(
            bat_id=msg.bat_id,
            size=msg.size,
            payload=msg.payload,
            refcount=len(waits),
            version=msg.version,
        )
        self.cache[msg.bat_id] = cached
        self.pinned_bytes += msg.size
        if req.served_at is None:
            req.served_at = now
            if self.bus.active:
                self.bus.publish(
                    ev.RequestServed(
                        now, msg.bat_id, now - req.registered_at, self.node_id
                    )
                )
        if self.bus.active:
            self.bus.publish(
                ev.BatPinned(now, msg.bat_id, self.node_id, count=len(waits))
            )
        result = PinResult(True, msg.bat_id, msg.payload, msg.version)
        for wait in waits:
            req.queries[wait.query_id] = True
            if degraded:
                if self.bus.active:
                    self.bus.publish(ev.QueryDegraded(now, wait.query_id, self.node_id))
            wait.future.resolve(result)

    def _note_query_pinned(self, bat_id: int, query_id: int) -> None:
        """Cache-hit pins still count toward request completion."""
        req = self.s2.get(bat_id)
        if req is None:
            return
        self.s2.mark_pinned(bat_id, query_id)
        if req.all_pinned():
            self.s2.unregister(bat_id)
            self._cancel_resend(bat_id)

    def _local_fetch(self, bat_id: int, fut: Future) -> None:
        """Owner-local access: "retrieved from disk or local memory and
        put into the DBMS space" (section 4.2.1)."""
        waiters = self._local_fetches.get(bat_id)
        if waiters is not None:
            waiters.append(fut)
            return
        self._local_fetches[bat_id] = [fut]
        entry = self.s1.get(bat_id)
        self.sim.post(
            self.loader.disk_fetch_time(entry.size),
            self._local_fetch_done,
            bat_id,
            self.epoch,
        )

    def _local_fetch_done(self, bat_id: int, epoch: int) -> None:
        if epoch != self.epoch:
            return  # the node crashed (and possibly restarted) meanwhile
        waiters = self._local_fetches.pop(bat_id, [])
        entry = self.s1.maybe(bat_id)
        if entry is None or entry.deleted:
            result = PinResult(False, bat_id, error="BAT does not exist")
        else:
            cached = self.cache.get(bat_id)
            if cached is None:
                cached = CachedBat(
                    bat_id=bat_id,
                    size=entry.size,
                    payload=self.loader.payloads.get(bat_id),
                    refcount=0,
                    version=entry.version,
                )
                self.cache[bat_id] = cached
                self.pinned_bytes += entry.size
            cached.refcount += len(waiters)
            result = PinResult(True, bat_id, cached.payload, cached.version)
        for fut in waiters:
            fut.resolve(result)

    # ==================================================================
    # requests: sending, resend timeouts, failure
    # ==================================================================
    def _ship_request(self, msg: RequestMessage) -> None:
        """Put a request on the ring, fast-forwarding disinterested hops."""
        ff = self._ff
        if ff is not None and ff.send_request(self, msg):
            return
        self.out_request.send(msg, self.config.request_message_size)

    def _send_request(self, entry: OutstandingRequest) -> None:
        now = self.sim.now
        entry.sent = True
        entry.sent_at = now
        if self.bus.active:
            self.bus.publish(ev.RequestCreated(now, entry.bat_id, self.node_id))
        msg = RequestMessage(origin=self.node_id, bat_id=entry.bat_id)
        self._ship_request(msg)
        self._arm_resend(entry)

    def _resend_interval(self, resends: int) -> float:
        """Exponential backoff: each unanswered resend stretches the next
        timeout by ``resend_backoff_base``, capped at ``resend_backoff_cap``
        times the base timeout.  The default base of 1.0 reproduces the
        paper's fixed rotational-delay timeout."""
        factor = min(
            self.config.resend_backoff_base ** resends,
            self.config.resend_backoff_cap,
        )
        return self.loss_timeout * factor

    def _arm_resend(self, entry: OutstandingRequest) -> None:
        self._cancel_resend(entry.bat_id)
        self._resend_timers[entry.bat_id] = self.sim.schedule(
            self._resend_interval(entry.resends), self._resend_fired, entry.bat_id
        )

    def _cancel_resend(self, bat_id: int) -> None:
        timer = self._resend_timers.pop(bat_id, None)
        if timer is not None:
            timer.cancel()

    def _resend_fired(self, bat_id: int) -> None:
        """Section 4.2.3: "A resend() function is triggered by a timeout
        on the rotational delay for BATs requested into the storage ring.
        It indicates a package loss."

        A resend is only warranted when the BAT has genuinely stopped
        flowing: no sighting since the request (or its last pass) for a
        full timeout.  While the BAT keeps rotating, blocked pins will be
        served on its next pass and the timer merely re-arms.
        """
        self._resend_timers.pop(bat_id, None)
        entry = self.s2.get(bat_id)
        if entry is None:
            return
        now = self.sim.now
        last_sign_of_life = max(
            entry.sent_at,
            entry.last_data_seen if entry.last_data_seen is not None else 0.0,
        )
        stale_in = last_sign_of_life + self.loss_timeout - now
        if stale_in > 1e-12:
            # The BAT flowed past recently; check again when it turns stale.
            self._resend_timers[bat_id] = self.sim.schedule(
                stale_in, self._resend_fired, bat_id
            )
            return
        if (
            self.config.max_resends is not None
            and entry.resends >= self.config.max_resends
        ):
            # escalation: the BAT is gone for good as far as this node can
            # tell -- stop retrying and fail the blocked queries
            if self.bus.active:
                self.bus.publish(
                    ev.ResendAbandoned(now, bat_id, self.node_id, entry.resends)
                )
                self.bus.publish(ev.RequestUnavailable(now, bat_id, self.node_id))
            self._fail_request(bat_id, DATA_UNAVAILABLE)
            return
        entry.resends += 1
        if self.bus.active:
            self.bus.publish(ev.RequestResent(now, bat_id, self.node_id))
        entry.sent_at = now
        msg = RequestMessage(origin=self.node_id, bat_id=bat_id)
        self._ship_request(msg)
        self._arm_resend(entry)

    def _fail_request(self, bat_id: int, reason: str) -> None:
        self.s2.unregister(bat_id)
        self._cancel_resend(bat_id)
        result = PinResult(False, bat_id, error=reason)
        for wait in self.s3.pop_all(bat_id):
            wait.future.resolve(result)

    # ==================================================================
    # fault tolerance: crash / restart lifecycle (docs/faults.md)
    # ==================================================================
    def crash(self) -> None:
        """Kill the node: volatile state is lost, blocked queries fail.

        The owned-BAT catalog (S1) survives -- it models the local disk --
        but its in-memory flags are stale until :meth:`restart` resets
        them.  Channel purging and peer notification are the ring
        facade's job (:meth:`~repro.core.ring.DataCyclotron.crash_node`).
        """
        if self.crashed:
            return
        self.crashed = True
        self.epoch += 1
        result_cache: Dict[int, PinResult] = {}
        for bat_id in self.s3.bat_ids():
            result = result_cache.setdefault(
                bat_id, PinResult(False, bat_id, error=NODE_CRASHED)
            )
            for wait in self.s3.pop_all(bat_id):
                wait.future.resolve(result)
        for bat_id, waiters in list(self._local_fetches.items()):
            result = PinResult(False, bat_id, error=NODE_CRASHED)
            for fut in waiters:
                fut.resolve(result)
        self._local_fetches.clear()
        for bat_id in self.s2.bat_ids():
            self.s2.unregister(bat_id)
        for bat_id in list(self._resend_timers):
            self._cancel_resend(bat_id)
        self.cache.clear()
        self.pinned_bytes = 0
        self.loader.reserved_bytes = 0

    def restart(self) -> None:
        """Bring a crashed node back with an empty hot set.

        Owned BATs are still on the local disk, but none of them are in
        the ring: they reload on demand (request propagation outcome 4)
        or via the periodic ``loadAll`` tick.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.epoch += 1
        for entry in self.s1:
            entry.loaded = False
            entry.loading = False
            self.s1.note_unpending(entry)

    def on_peer_down(
        self, peer: int, unavailable_bats: List[int], rehomed_bats: List[int]
    ) -> None:
        """Failure notification: ``peer`` is dead; its BATs were either
        re-homed (``rehomed_bats``) or declared ``unavailable_bats``.

        Unavailable BATs fail fast with DATA_UNAVAILABLE -- pending
        requests (and the pins blocked on them) immediately, future ones
        at pin() time -- until the owner rejoins.  This notification is
        also what resolves a pin issued *inside* the failure window
        (between the physical death and the ring repair): the blocked S3
        wait is failed here rather than hanging until resend escalation.

        For re-homed BATs with a request still outstanding, the request
        is re-issued at once: the original may have died in the dead
        node's purged queues, and waiting out the rotational resend
        timeout would dominate the recovery latency.
        """
        self.dead_peers.add(peer)
        now = self.sim.now
        for bat_id in unavailable_bats:
            if self.s1.owns(bat_id):
                continue
            self.unavailable_bats.add(bat_id)
            if self.s2.has(bat_id):
                if self.bus.active:
                    self.bus.publish(ev.RequestUnavailable(now, bat_id, self.node_id))
                self._fail_request(bat_id, DATA_UNAVAILABLE)
        for bat_id in rehomed_bats:
            entry = self.s2.get(bat_id)
            if entry is None or not entry.sent:
                continue
            entry.resends += 1
            if self.bus.active:
                self.bus.publish(ev.RequestResent(now, bat_id, self.node_id))
            entry.sent_at = now
            msg = RequestMessage(origin=self.node_id, bat_id=bat_id)
            self.out_request.send(msg, self.config.request_message_size)
            self._arm_resend(entry)

    def on_peer_up(self, peer: int, owned_bats: List[int]) -> None:
        """Recovery notification: ``peer`` rejoined with ``owned_bats``."""
        self.dead_peers.discard(peer)
        for bat_id in owned_bats:
            self.unavailable_bats.discard(bat_id)

    def adopt_ownership(
        self,
        bat_id: int,
        size: int,
        payload: Any = None,
        incarnation: int = 0,
        version: int = 0,
    ) -> None:
        """Re-home a dead peer's BAT to this node (shared-storage model).

        Continues the dead owner's incarnation/version counters so stale
        circulating copies are still recognised.  A pending local request
        for the BAT fails over to a local disk fetch.
        """
        if self.s1.owns(bat_id):
            return
        self.s1.remove(bat_id)  # clear a deleted stub, if any
        entry = self.s1.add(bat_id, size)
        entry.incarnation = incarnation
        entry.version = version
        if payload is not None:
            self.loader.payloads[bat_id] = payload
        self.unavailable_bats.discard(bat_id)
        if self.s2.has(bat_id):
            self.s2.unregister(bat_id)
            self._cancel_resend(bat_id)
            for wait in self.s3.pop_all(bat_id):
                if self.bus.active:
                    self.bus.publish(
                        ev.QueryDegraded(self.sim.now, wait.query_id, self.node_id)
                    )
                self._local_fetch(bat_id, wait.future)

    # ==================================================================
    # periodic ticks (scheduled by the ring facade)
    # ==================================================================
    def tick_load_all(self) -> None:
        self.loader.load_all()

    def tick_loit(self) -> None:
        load = self.out_data.queued_bytes / self.config.bat_queue_capacity
        before = self.loit.threshold
        after = self.loit.observe(load)
        if after != before:
            if self.bus.active:
                self.bus.publish(ev.LoitChanged(self.sim.now, self.node_id, after))
            self.loit_history.append((self.sim.now, after))

    # ==================================================================
    # introspection
    # ==================================================================
    @property
    def buffer_load(self) -> float:
        return self.out_data.queued_bytes / self.config.bat_queue_capacity

    def owned_loaded_bytes(self) -> int:
        return self.s1.loaded_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.node_id}: owns={len(self.s1)} s2={len(self.s2)} "
            f"s3={len(self.s3)} loit={self.loit.threshold}>"
        )
