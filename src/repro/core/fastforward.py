"""Rotation fast-forwarding: coalesce disinterested hops in closed form.

A BAT "travels clockwise" (section 4.2.2) past nodes that, most of the
time, neither own it nor hold a request for it -- each such hop costs
two simulator events (serialisation end, delivery) plus a handler whose
only effect is ``hops += 1`` and a re-send on the next channel.  A
request forwarded anti-clockwise past disinterested nodes is the same
story.  The :class:`FastForwarder` detects maximal runs of such hops at
send time and replaces them with **one** analytically computed arrival:

* the per-hop times are computed with the exact float operations the
  link would have used (``serialise_end = enqueue + size/bandwidth``,
  ``arrival = serialise_end + delay``), so the coalesced trajectory is
  bit-identical to the classic one,
* link statistics, ``BatForwarded`` / ``RequestForwarded`` bus events
  (with their original per-hop timestamps) and the message's ``hops``
  field are applied lazily when the flight lands, and the elided
  simulator events are *credited* so ``Simulator.processed`` -- and
  therefore ``DataCyclotron.summary()`` -- match a classic run,
* the **last** hop into the first interested node is executed as a real
  channel send at its exact classic time, so absorption, pin service,
  loss injection and DropTail at the stop node run unmodified protocol
  code.

Safety is conservative: a hop is only coalesced when the intervening
channel is pristine (no loss injection, nothing queued or serialising,
capacity admits the message) and the next node is provably
disinterested (not the owner/origin, no S2 entry).  Anything that could
invalidate a flight mid-air *flushes* it back into real link state
first: a competing send on a reserved channel, a new S2 registration
for the flight's BAT, a topology fault, a link degradation, or a
metrics snapshot.  Fault injection disables the fast path for the rest
of the run -- chaos scenarios execute the classic event stream.

The facade owns one forwarder per ring (``config.fast_forward``,
default on) and injects it into every :class:`NodeRuntime` as
``node._ff``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.events import types as ev
from repro.events.types import (
    LinkDelivered,
    LinkTransmit,
    RotationFastForwarded,
    SimEventFired,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.messages import BATMessage, RequestMessage
    from repro.core.ring import DataCyclotron
    from repro.core.runtime import NodeRuntime

__all__ = ["FastForwarder", "Flight"]


class Flight:
    """One coalesced multi-hop traversal, pending its arrival event.

    ``hops`` holds one ``(link, enqueue, tx, serialise_end, arrival)``
    tuple per analytic hop; ``skipped`` the disinterested runtimes the
    message passes through.  The last skipped node performs the real
    final send when the flight completes (or is flushed past it).
    """

    __slots__ = (
        "ff", "kind", "msg", "wire", "hops", "skipped", "event", "bat_id", "span",
    )

    def __init__(self, ff: "FastForwarder", kind: str, msg, wire: int,
                 hops: list, skipped: list):
        self.ff = ff
        self.kind = kind  # "bat" | "request"
        self.msg = msg
        self.wire = wire
        self.hops = hops
        self.skipped = skipped
        self.event = None
        self.bat_id = msg.bat_id
        # node_id -> hop index, so the S2-registration gate in
        # flush_bat is one dict probe instead of a walk of ``skipped``
        self.span = {rt.node_id: i for i, rt in enumerate(skipped)}

    def flush(self) -> None:
        self.ff._flush_flight(self)

    def touch(self, link, size: int = 0) -> None:
        """A competing send of ``size`` bytes reached ``link``: flush,
        unless the flight provably does not interact with it -- the
        flight's message already left the sender side (the reservation
        just lapses), or it has not reached this link yet and the
        competing transmission drains before it would (the reservation
        stays, guarding the hop against later, overlapping sends)."""
        if not self.ff._tolerates(self, link, size):
            self.ff._flush_flight(self)


class FastForwarder:
    """Per-ring rotation fast-forwarding engine."""

    def __init__(self, dc: "DataCyclotron"):
        self.dc = dc
        self.sim = dc.sim
        self.bus = dc.bus
        self.config = dc.config
        self.nodes: List["NodeRuntime"] = dc.nodes
        self.n = len(dc.nodes)
        self.ring = dc.ring
        # The fast path needs the closed form of a skipped forward to be
        # *exactly* "hops += 1, publish, send": a non-zero network CPU
        # overhead (non-RDMA transfer modes) adds per-hop core
        # accounting, so those configurations stay classic.
        self.active = (
            self.config.fast_forward
            and self.n >= 3
            and self.config.network_cpu_factor() == 0.0
        )
        # Skipping request hops would starve the resilience detector's
        # liveness monitors on the request channels; the facade clears
        # this when a detector is attached.  BAT flights are unaffected.
        self.request_enabled = True
        self._pos: Dict[int, int] = {node.node_id: i for i, node in enumerate(dc.nodes)}
        self._req_step = 1 if self.config.requests_clockwise else -1
        # The scan runs on every forward, so its per-hop cost decides
        # whether coalescing pays at all: flat arrays indexed by ring
        # position replace the attribute chains (node.s2.get,
        # ring.data[i].link, ...) of the classic path.  All of these
        # objects live as long as the deployment; rewires only re-point
        # channel receivers.  Node ids are ring positions by
        # construction -- verified here, never assumed.
        if any(node.node_id != i for i, node in enumerate(dc.nodes)):
            self.active = False  # pragma: no cover - facade always ids in order
        self._s2maps = [node.s2._requests for node in dc.nodes]
        self._s1maps = [node.s1._bats for node in dc.nodes]
        self._data_hw = [(ch, ch.link) for ch in dc.ring.data]
        self._req_hw = [(ch, ch.link) for ch in dc.ring.request]
        # Longest run of hops one flight may coalesce.  A flight longer
        # than the gap to the next circulating BAT is guaranteed to be
        # flushed by that BAT's next forward (it enters one of the
        # reserved links before the flight lands), so unbounded flights
        # churn in dense traffic.  The cap trades per-flight savings for
        # a far lower flush rate; n-1 means uncapped.
        self.scan_limit = self.n - 1
        # Shortest run worth coalescing: a flight of k hops elides 2k-1
        # events but pays launch + (on bad luck) flush; below this the
        # classic path is cheaper even when the flight lands cleanly.
        self.min_flight = 3
        self._by_bat: Dict[int, List[Flight]] = {}
        # Lazy accounting re-publishes per-hop events out of dispatch
        # order; any observer of the per-hop stream (tracer, profiler)
        # therefore pins the classic path.  Cached on the bus version.
        self._bus_version = -1
        self._lazy_ok = True
        self._wants_ff = False
        # Flush-churn backoff: every flush adds debt, every clean landing
        # pays some back.  Above the threshold the scans refuse to launch
        # (the classic path is always correct), decaying slowly so probe
        # flights resume once traffic thins out.  In dense rings -- where
        # nearly every flight would be flushed by a competing send -- the
        # machinery would otherwise cost more than the elided events.
        self._debt = 0
        # BAT-scan gate checked by the caller *before* the method call.
        # A small ring circulating more BATs than it has nodes keeps its
        # data links serialisation-saturated: every hop queues, so there
        # is nothing to coalesce and even a refused scan is pure
        # overhead on the hottest path in the simulator.  set_population
        # suspends BAT scanning for that regime; the request ring
        # carries 64-byte messages and never saturates, so request
        # coalescing stays on.
        self.bat_scan_ok = self.active
        self._population = 0
        # observability
        self.flights = 0
        self.hops_coalesced = 0
        self.flushes = 0
        self.truncations = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def disable(self) -> None:
        """Flush everything and pin the classic path (fault injected)."""
        self.flush_all()
        self.active = False
        self.bat_scan_ok = False

    def set_population(self, count: int) -> None:
        """The ring now circulates ``count`` BATs; regate BAT scanning.

        More BATs than nodes on a small ring means the average inter-BAT
        gap is under one hop and the data links stay busy serialising --
        flights would be overrun before landing, and the per-forward
        scan is wasted work.  Large rings keep scanning: even dense
        interest leaves multi-hop disinterested runs worth coalescing.
        """
        self._population = count
        self.bat_scan_ok = self.active and not (
            self.n <= 16 and 2 * count >= 3 * self.n
        )

    def flush_all(self) -> None:
        while self._by_bat:
            _bat_id, flights = next(iter(self._by_bat.items()))
            flights[0].flush()

    def flush_bat(self, bat_id: int, node_id: Optional[int] = None) -> None:
        """Land in-flight traffic for ``bat_id`` ahead of a state change.

        With ``node_id`` (a new S2 registration at that node), only
        flights whose *remaining* analytic path passes the node are
        affected: the registration turns the node into a stop the scan
        did not see, so the flight must not sail past it.  Flights that
        already passed the node -- the classic run would have checked
        its (then-empty) S2 at the same per-hop instants -- and flights
        not routed through it keep flying.  Where possible the flight is
        truncated to land just short of the node instead of being torn
        down (:meth:`_truncate`); the final real send then enters the
        node at its exact classic time, so absorption and pin service
        run unmodified protocol code.

        Without ``node_id`` (BAT added/removed, topology change) every
        flight for the BAT is flushed, as before.
        """
        flights = self._by_bat.get(bat_id)
        if node_id is None:
            while flights:
                flights[0].flush()
                flights = self._by_bat.get(bat_id)
            return
        if not flights:
            return
        now = self.sim.now
        for flight in list(flights):
            i = flight.span.get(node_id)
            if i is None:
                continue
            hop = flight.hops[i]
            # At an exact tie (arrival == now) the classic run's order
            # is decided by heap seq: the delivery was scheduled at the
            # hop's serialise-end, the registering event at
            # ``dispatch_origin``.  If the registration was scheduled
            # first it also dispatches first, so the delivery must
            # re-materialise as pending (and will see the new entry);
            # otherwise the node was already passed.
            if hop[4] < now or (hop[4] == now and self.sim.dispatch_origin > hop[3]):
                continue  # node already passed (its S2 check is behind us)
            if hop[1] <= now:
                # mid-hop into the node: re-materialise the crossing
                # so the node takes a real delivery at the exact time
                self._flush_flight(flight)
            else:
                self._truncate(flight, i)

    def _refresh_bus_caches(self) -> None:
        bus = self.bus
        self._bus_version = bus.version
        self._lazy_ok = not (
            bus._wildcard
            or bus.wants(LinkTransmit)
            or bus.wants(LinkDelivered)
            or bus.wants(SimEventFired)
        )
        self._wants_ff = bus.wants(RotationFastForwarded)

    # ------------------------------------------------------------------
    # send-time interception
    # ------------------------------------------------------------------
    def send_bat(self, node: "NodeRuntime", msg: "BATMessage", wire: int) -> bool:
        """Try to coalesce ``node``'s forward; False -> caller sends classically."""
        if not self.active:
            return False
        if self._debt >= 16:
            self._debt -= 1
            return False
        if self.bus.version != self._bus_version:
            self._refresh_bus_caches()
        if not self._lazy_ok:
            return False
        owner = msg.owner
        bat_id = msg.bat_id
        n = self.n
        pos = node.node_id
        s2maps = self._s2maps
        # Most forwards happen *inside* an interested run -- the next
        # node stops the message -- so the dominant scan outcome is a
        # first-hop failure.  Check it before paying for the full setup.
        nxt = pos + 1
        if nxt == n:
            nxt = 0
        if nxt == owner or s2maps[nxt].get(bat_id) is not None:
            return False
        nodes = self.nodes
        hw = self._data_hw
        hops: list = []
        skipped: list = []
        t = self.sim.now
        limit = self.scan_limit
        while len(skipped) < limit:
            nxt = pos + 1
            if nxt == n:
                nxt = 0
            if nxt == owner or s2maps[nxt].get(bat_id) is not None:
                break
            ch, link = hw[pos]
            ft = link.ff_transit
            if ft is not None and not self._release_if_passed(ft, link):
                break
            if (
                ch.loss_rate != 0.0
                or link._busy
                or link._queue
                or (link.queue_capacity is not None and wire > link.queue_capacity)
            ):
                break
            tx = wire / link.bandwidth
            s_end = t + tx
            arrival = s_end + link.delay
            hops.append((link, t, tx, s_end, arrival))
            skipped.append(nodes[nxt])
            t = arrival
            pos = nxt
        if len(skipped) < self.min_flight:
            # a short flight saves a couple of net events but pays for
            # the whole flight machinery; let the classic path handle it
            return False
        self._launch(Flight(self, "bat", msg, wire, hops, skipped), t)
        return True

    def send_request(self, node: "NodeRuntime", msg: "RequestMessage") -> bool:
        """Try to coalesce a request forward; False -> classic send."""
        if not (self.active and self.request_enabled):
            return False
        if self._debt >= 16:
            self._debt -= 1
            return False
        if self.bus.version != self._bus_version:
            self._refresh_bus_caches()
        if not self._lazy_ok:
            return False
        origin = msg.origin
        bat_id = msg.bat_id
        n = self.n
        step = self._req_step
        pos = node.node_id
        s1maps = self._s1maps
        s2maps = self._s2maps
        # first-hop failure is the common case; check before full setup
        nxt = (pos + step) % n
        if nxt == origin or s2maps[nxt].get(bat_id) is not None:
            return False
        owned = s1maps[nxt].get(bat_id)
        if owned is not None and not owned.deleted:
            return False
        wire = self.config.request_message_size
        nodes = self.nodes
        hw = self._req_hw
        hops: list = []
        skipped: list = []
        t = self.sim.now
        limit = self.scan_limit
        while len(skipped) < limit:
            nxt = (pos + step) % n
            if nxt == origin or s2maps[nxt].get(bat_id) is not None:
                break
            owned = s1maps[nxt].get(bat_id)
            if owned is not None and not owned.deleted:  # s1.owns, inlined
                break
            ch, link = hw[pos]
            ft = link.ff_transit
            if ft is not None and not self._release_if_passed(ft, link):
                break
            if (
                ch.loss_rate != 0.0
                or link._busy
                or link._queue
                or (link.queue_capacity is not None and wire > link.queue_capacity)
            ):
                break
            tx = wire / link.bandwidth
            s_end = t + tx
            arrival = s_end + link.delay
            hops.append((link, t, tx, s_end, arrival))
            skipped.append(nodes[nxt])
            t = arrival
            pos = nxt
        if len(skipped) < self.min_flight:
            return False
        self._launch(Flight(self, "request", msg, wire, hops, skipped), t)
        return True

    # ------------------------------------------------------------------
    # flight mechanics
    # ------------------------------------------------------------------
    def _launch(self, flight: Flight, arrival: float) -> None:
        for hop in flight.hops:
            hop[0].ff_transit = flight
        self._by_bat.setdefault(flight.bat_id, []).append(flight)
        # the completion stands in for the classic delivery into the last
        # skipped node, which the wire would have scheduled at that hop's
        # serialise-end: stamp it so same-instant ties dispatch in the
        # classic order
        flight.event = self.sim.schedule_backdated_at(
            arrival, flight.hops[-1][3], self._complete, flight
        )
        self.flights += 1
        self.hops_coalesced += len(flight.hops)

    def _release_if_passed(self, flight: Flight, link) -> bool:
        """Release ``link``'s reservation if ``flight`` has analytically
        left its *sender* side already (serialisation over that hop ended
        in the past -- the classic wire frees at serialise-end, while the
        message propagates for ``delay`` more).  A competing transmission
        started now serialises after ours ended and delivers a full
        ``tx`` later, so FIFO order at the far node is preserved.  The
        hop's lazy accounting still lands with the flight; every counter
        it touches is order-insensitive, so a later competing send sees
        exactly the link state a classic run would show now.  At an
        exact serialise-end tie the wire is free only if the classic
        serialise-end event (scheduled at the hop's enqueue) would have
        dispatched before the currently running one."""
        now = self.sim.now
        origin = self.sim.dispatch_origin
        for hop in flight.hops:
            if hop[0] is link:
                if hop[3] < now or (hop[3] == now and origin > hop[1]):
                    link.ff_transit = None
                    return True
                return False
        return False  # pragma: no cover - defensive

    def _tolerates(self, flight: Flight, link, size: int) -> bool:
        """True if a competing send of ``size`` bytes on ``link`` right
        now provably cannot perturb ``flight`` (no flush needed).

        Two safe cases.  The flight's message already left the sender
        side of this hop: the reservation lapses (see
        :meth:`_release_if_passed`).  Or the flight has not *reached*
        this link yet and everything ahead of it -- the serialisation in
        progress, the queue, and the competing message itself -- drains
        *strictly* before the flight's analytic enqueue: the classic run
        would find the sender free again at that enqueue, so the
        precomputed hop times stay bit-exact.  (An exact-tie drain is
        not tolerated: the flight's enqueue-side delivery was scheduled
        before the last competing serialise-end, so classically it
        dispatches first and would find the wire busy.)  The reservation
        is kept in that case -- a later send could still overlap the
        analytic crossing.

        The drain bound is what keeps unrelated traffic cheap: a
        gateway-induced hop (a 64-byte fetch request, say) crossing a
        link some other BAT's flight reserved queues behind nothing and
        drains in microseconds, so it rides through without tearing the
        flight down.  Only traffic that genuinely overlaps the analytic
        crossing forces a flush.
        """
        now = self.sim.now
        for hop in flight.hops:
            if hop[0] is link:
                if hop[3] < now or (
                    hop[3] == now and self.sim.dispatch_origin > hop[1]
                ):
                    link.ff_transit = None
                    return True
                if now < hop[1]:
                    bandwidth = link.bandwidth
                    drain = link._busy_until if link._busy else now
                    if link._queue:
                        drain += link._queued_bytes / bandwidth
                    drain += size / bandwidth
                    if drain < hop[1]:
                        return True
                return False
        return False  # pragma: no cover - defensive

    def _truncate(self, flight: Flight, stop: int) -> None:
        """Shorten ``flight`` so it lands *before* ``skipped[stop]``.

        Only valid while the message has not yet entered hop ``stop``
        (``now < hops[stop][1]``), which also implies ``stop >= 1`` --
        hop 0's enqueue is the launch instant.  The dropped hops release
        their reservations, and the completion event moves up to the
        arrival at the new last skipped node; its live final send then
        enqueues on hop ``stop``'s link at exactly ``hops[stop][1]``,
        the time the classic message would have entered it.
        """
        hops = flight.hops
        for hop in hops[stop:]:
            if hop[0].ff_transit is flight:
                hop[0].ff_transit = None
        self.hops_coalesced -= len(hops) - stop
        self.truncations += 1
        flight.hops = hops[:stop]
        flight.skipped = flight.skipped[:stop]
        flight.span = {rt.node_id: j for j, rt in enumerate(flight.skipped)}
        flight.event.cancel()
        flight.event = self.sim.schedule_backdated_at(
            hops[stop - 1][4], hops[stop - 1][3], self._complete, flight
        )

    def _unregister(self, flight: Flight) -> None:
        # released links may have been re-claimed by a younger flight
        for hop in flight.hops:
            if hop[0].ff_transit is flight:
                hop[0].ff_transit = None
        flights = self._by_bat.get(flight.bat_id)
        if flights is not None:
            flights.remove(flight)
            if not flights:
                del self._by_bat[flight.bat_id]

    def _account_hop(self, link, tx: float, wire: int) -> None:
        """Closed form of one completed hop's link accounting."""
        stats = link.stats
        stats.messages_sent += 1
        stats.messages_delivered += 1
        stats.bytes_sent += wire
        stats.bytes_delivered += wire
        stats.busy_time += tx
        if stats.max_queue_bytes < wire:
            stats.max_queue_bytes = wire

    def _publish_forward(self, flight: Flight, runtime, when: float) -> None:
        bus = self.bus
        if not bus.active:
            return
        if flight.kind == "bat":
            bus.publish(ev.BatForwarded(when, flight.bat_id, runtime.node_id))
        else:
            bus.publish(ev.RequestForwarded(when, flight.bat_id, runtime.node_id))

    def _final_send(self, flight: Flight) -> None:
        """The real send into the stop node, by the last skipped runtime."""
        last = flight.skipped[-1]
        if flight.kind == "bat":
            last.forward_bat(flight.msg)
        else:
            if self.bus.active:
                self.bus.publish(
                    ev.RequestForwarded(self.sim.now, flight.bat_id, last.node_id)
                )
            last._ship_request(flight.msg)

    def _complete(self, flight: Flight) -> None:
        """The flight's arrival event: apply the closed form, send on."""
        if self._debt > 0:
            self._debt -= 1
        self._unregister(flight)
        wire = flight.wire
        hops = flight.hops
        k = len(hops)
        for hop in hops:  # _account_hop, inlined for the hot path
            stats = hop[0].stats
            stats.messages_sent += 1
            stats.messages_delivered += 1
            stats.bytes_sent += wire
            stats.bytes_delivered += wire
            stats.busy_time += hop[2]
            if stats.max_queue_bytes < wire:
                stats.max_queue_bytes = wire
        flight.msg.hops += k
        # forwards by every skipped node but the last, at their original
        # per-hop timestamps; the last forwards live via _final_send
        if self.bus.active:
            for m in range(k - 1):
                self._publish_forward(flight, flight.skipped[m], hops[m][4])
        # k analytic hops cost 2k classic events; this callback was one
        self.sim.credit(2 * k - 1)
        if self._wants_ff:
            self.bus.publish(
                RotationFastForwarded(
                    self.sim.now, flight.kind, flight.bat_id,
                    flight.skipped[-1].node_id, k,
                )
            )
        self._final_send(flight)

    def _flush_flight(self, flight: Flight) -> None:
        """Re-materialise a flight into real link state, bit-exactly.

        Hops whose arrival has passed get their full closed-form
        accounting; the hop the message is currently crossing is put
        back onto its link (busy flag, in-flight list, a real
        serialisation/delivery event at the precomputed instant, with
        its classic scheduling time stamped for same-instant ordering)
        so every subsequent interaction -- a competing send queueing
        behind it, a degradation, a crash purge -- behaves exactly as
        if the flight had never existed.

        A hop arriving at exactly ``now`` counts as passed only if the
        classic delivery would already have dispatched: it was scheduled
        at the hop's serialise-end, the currently running event at
        ``dispatch_origin``, and the heap dispatches the earlier-
        scheduled one first.
        """
        self._unregister(flight)
        flight.event.cancel()
        self.flushes += 1
        if self._debt < 64:
            self._debt += 4
        now = self.sim.now
        sim = self.sim
        wire = flight.wire
        msg = flight.msg
        hops = flight.hops
        k = len(hops)
        done = 0
        while done < k and hops[done][4] < now:
            done += 1
        if (
            done < k
            and hops[done][4] == now
            and sim.dispatch_origin > hops[done][3]
        ):
            done += 1
        for m in range(done):
            self._account_hop(hops[m][0], hops[m][2], wire)
        msg.hops += done
        if done == k:
            # past every analytic hop: only the live final send remains,
            # and _final_send publishes the last node's forward itself
            for m in range(done - 1):
                self._publish_forward(flight, flight.skipped[m], hops[m][4])
            sim.credit(2 * k)
            self._final_send(flight)
            return
        for m in range(done):
            self._publish_forward(flight, flight.skipped[m], hops[m][4])
        # the message is crossing hop ``done``: sender-side accounting
        # happened at enqueue time in the classic run, delivery has not
        link, enq, tx, s_end, arrival = hops[done]
        stats = link.stats
        stats.messages_sent += 1
        stats.bytes_sent += wire
        stats.busy_time += tx
        if stats.max_queue_bytes < wire:
            stats.max_queue_bytes = wire
        link._in_flight.append((msg, wire))
        # serialise-end was classically scheduled at the hop's enqueue;
        # at an exact tie (now == s_end) it has dispatched only if the
        # running event was scheduled after the enqueue
        if now < s_end or (now == s_end and sim.dispatch_origin < enq):
            link._busy = True
            link._busy_until = s_end
            sim.post_backdated(s_end, enq, link._serialised, msg, wire)
            sim.credit(2 * done)
        else:
            sim.post_backdated(arrival, s_end, link._deliver, msg, wire)
            sim.credit(2 * done + 1)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "flights": self.flights,
            "hops_coalesced": self.hops_coalesced,
            "flushes": self.flushes,
            "truncations": self.truncations,
            "events_credited": self.sim.credited,
        }
