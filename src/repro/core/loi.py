"""Level-of-interest arithmetic and the adaptive LOIT controller.

Section 4.4, Equation (1): each time a BAT completes a ring cycle its
owner recomputes

    CAVG   = copies / hops
    newLOI = LOI / cycles + CAVG

which is exactly the expression of Figure 5 line 04,
``(loi + (copies/hops) * cycles) / cycles``.  The division by ``cycles``
ages old interest away; the CAVG term renews interest proportional to
the fraction of ring nodes that actually used the BAT in the last cycle.

The *threshold* LOIT_n separating hot from cold is per node and adapts
to the local BAT-queue load (section 5.2): above the 80 % watermark the
threshold steps up one level (BATs die faster, freeing buffer space);
below the 40 % watermark it steps down (BATs linger, exploiting the
spare capacity).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["new_loi", "LoitController"]


def new_loi(loi: float, copies: int, hops: int, cycles: int) -> float:
    """Equation (1) of the paper.

    ``cycles`` is the value *after* the owner incremented it for the
    completed rotation, so it is at least 1.  ``hops`` counts the hops
    since the BAT left its owner; on a ring it equals the ring size when
    the BAT returns, and can only be 0 if the owner is the sole node --
    in that degenerate case the CAVG term is defined as 0.
    """
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1 when recomputing LOI (got {cycles})")
    if hops < 0 or copies < 0:
        raise ValueError("copies and hops cannot be negative")
    cavg = (copies / hops) if hops > 0 else 0.0
    return loi / cycles + cavg


class LoitController:
    """Per-node LOIT ladder with watermark-driven adaptation.

    With ``static`` set, the threshold never moves (the section 5.1
    sweep).  Otherwise the controller walks the ``levels`` ladder one
    step per observation, as section 5.2 prescribes: "Every time the
    buffer load is above 80% of its capacity, the LOITn is increased one
    level ... if it is below the 40% of its capacity, the LOITn is
    decreased one level."
    """

    def __init__(
        self,
        levels: Sequence[float] = (0.1, 0.6, 1.1),
        initial_level: int = 0,
        high_watermark: float = 0.80,
        low_watermark: float = 0.40,
        static: float | None = None,
    ):
        if static is None:
            if not levels:
                raise ValueError("levels cannot be empty")
            if any(b <= a for a, b in zip(levels, levels[1:])):
                raise ValueError("levels must be strictly increasing")
            if not 0 <= initial_level < len(levels):
                raise ValueError("initial_level out of range")
        if not 0 <= low_watermark < high_watermark <= 1:
            raise ValueError("watermarks must satisfy 0 <= low < high <= 1")
        self.levels = tuple(levels)
        self.level = initial_level
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.static = static
        self.adjustments_up = 0
        self.adjustments_down = 0

    @property
    def threshold(self) -> float:
        """The current LOIT_n value."""
        if self.static is not None:
            return self.static
        return self.levels[self.level]

    def observe(self, buffer_load: float) -> float:
        """Feed the current buffer-load fraction; returns the new threshold."""
        if self.static is not None:
            return self.static
        if buffer_load > self.high_watermark and self.level < len(self.levels) - 1:
            self.level += 1
            self.adjustments_up += 1
        elif buffer_load < self.low_watermark and self.level > 0:
            self.level -= 1
            self.adjustments_down += 1
        return self.threshold

    def is_hot(self, loi: float) -> bool:
        """True when a BAT with this LOI stays in the ring (Fig. 5 line 07)."""
        return loi >= self.threshold
