"""The Data Cyclotron core: the paper's primary contribution.

The public surface:

* :class:`DataCyclotron` -- build a ring, register BATs, run queries,
* :class:`DataCyclotronConfig` -- every tunable, defaulting to the
  paper's simulation setup (section 5),
* :class:`QuerySpec` / :class:`PinStep` -- workload description,
* :func:`new_loi` / :class:`LoitController` -- the level-of-interest
  machinery of section 4.4,
* :class:`NodeRuntime` -- one ring node (exposed for instrumentation).
"""

from repro.core.config import DataCyclotronConfig, MB, GBIT
from repro.core.loi import LoitController, new_loi
from repro.core.messages import BATMessage, RequestMessage
from repro.core.query import PinStep, QuerySpec, query_process
from repro.core.ring import DataCyclotron
from repro.core.runtime import CachedBat, NodeRuntime, PinResult
from repro.core.structures import (
    OutstandingRequest,
    OwnedBat,
    OwnedCatalog,
    PinTable,
    PinWait,
    RequestTable,
)

__all__ = [
    "BATMessage",
    "CachedBat",
    "DataCyclotron",
    "DataCyclotronConfig",
    "GBIT",
    "LoitController",
    "MB",
    "NodeRuntime",
    "OutstandingRequest",
    "OwnedBat",
    "OwnedCatalog",
    "PinResult",
    "PinStep",
    "PinTable",
    "PinWait",
    "QuerySpec",
    "RequestMessage",
    "RequestTable",
    "new_loi",
    "query_process",
]
