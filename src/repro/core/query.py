"""Query lifecycle: specs and the interpreter-thread process.

A query in the Data Cyclotron (sections 4.1 and 5.4) is, from the DC
layer's perspective, a sequence of calls: one ``request()`` for every
BAT it touches at registration time, then alternating operator execution
and ``pin()`` calls, and finally the ``unpin()`` calls.  The TPC-H
calibration (section 5.4) describes the timing rule we generalise here:

    "The first pin call, pin(X3), is scheduled OpT1 msec after the query
    registration.  The second one is scheduled OpT2 msec after the X3
    reception by the previous pin call. ... A query is finished T msec
    after ... the last pin call."

A :class:`QuerySpec` is therefore a list of :class:`PinStep`\\ s -- each
an (operator-time, bat-id) pair -- plus a tail execution time.  The
section 5.1 micro-benchmark maps onto this with one step per accessed
BAT whose ``op_time`` is the processing time scored for the previous
BAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from repro.core.runtime import NodeRuntime, PinResult
from repro.events.types import QueryRegistered

__all__ = ["PinStep", "QuerySpec", "query_process"]


@dataclass(frozen=True)
class PinStep:
    """One (operator-burst, pin) pair of a query plan."""

    bat_id: int
    op_time: float = 0.0  # CPU seconds executed before this pin is issued


@dataclass
class QuerySpec:
    """Everything needed to replay one query against the ring."""

    query_id: int
    node: int
    arrival: float
    steps: List[PinStep]
    tail_time: float = 0.0
    tag: str = ""
    # priority tier for graceful degradation (docs/overload.md): higher
    # tiers survive longer under brownout; 0 is best-effort traffic
    tier: int = 0

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival time cannot be negative")
        if self.tail_time < 0:
            raise ValueError("tail time cannot be negative")

    @property
    def bat_ids(self) -> List[int]:
        """Distinct BATs in first-use order (the request() list)."""
        seen = set()
        out: List[int] = []
        for step in self.steps:
            if step.bat_id not in seen:
                seen.add(step.bat_id)
                out.append(step.bat_id)
        return out

    @property
    def net_execution_time(self) -> float:
        """Execution time with all data local (the paper's "net" time)."""
        return sum(s.op_time for s in self.steps) + self.tail_time

    @classmethod
    def simple(
        cls,
        query_id: int,
        node: int,
        arrival: float,
        bat_ids: Sequence[int],
        processing_times: Sequence[float],
        tag: str = "",
        tier: int = 0,
    ) -> "QuerySpec":
        """The section 5.1 shape: per-BAT processing times.

        BAT *i* is pinned after the processing time of BAT *i-1* has been
        spent; the last BAT's processing time becomes the tail.
        """
        if len(bat_ids) != len(processing_times):
            raise ValueError("bat_ids and processing_times must align")
        if not bat_ids:
            raise ValueError("a query needs at least one BAT")
        steps = [
            PinStep(bat_id=b, op_time=(0.0 if i == 0 else processing_times[i - 1]))
            for i, b in enumerate(bat_ids)
        ]
        return cls(
            query_id=query_id,
            node=node,
            arrival=arrival,
            steps=steps,
            tail_time=processing_times[-1],
            tag=tag,
            tier=tier,
        )


def query_process(runtime: NodeRuntime, spec: QuerySpec) -> Generator:
    """The interpreter thread of one query, as a simulated process.

    Mirrors the massaged MAL plan of Table 2: request() everything up
    front, then pin -> execute -> ... -> unpin, and report completion.
    """
    if runtime.bus.active:
        runtime.bus.publish(
            QueryRegistered(runtime.sim.now, spec.query_id, spec.node, spec.tag)
        )
    runtime.request(spec.query_id, spec.bat_ids)

    pinned: List[int] = []
    failed: Optional[str] = None
    for step in spec.steps:
        if step.op_time > 0:
            yield runtime.exec_op(step.op_time)
        fut = runtime.pin(spec.query_id, step.bat_id)
        yield fut
        result: PinResult = fut.value
        if not result.ok:
            failed = result.error or "pin failed"
            break
        pinned.append(step.bat_id)

    if failed is None and spec.tail_time > 0:
        yield runtime.exec_op(spec.tail_time)

    for bat_id in pinned:
        runtime.unpin(spec.query_id, bat_id)
    runtime.finish_query(spec.query_id, failed=failed is not None, error=failed or "")
    # The generator's return value becomes the Process result: None on
    # success, the error string on failure.  The retry manager
    # (repro.resilience) joins on it to decide whether to fail over.
    return failed
