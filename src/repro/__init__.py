"""repro: a reproduction of "The Data Cyclotron Query Processing Scheme".

R. Goncalves and M. Kersten, EDBT 2010.  The Data Cyclotron turns data
movement "from being an evil to avoid at all cost into an ally for
improved system performance": the database hot set continuously rotates
through a storage ring of processing nodes, and queries simply wait for
their data to flow past.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.sim` -- the discrete-event kernel (replaces NS-2),
* :mod:`repro.net` -- links, channels, ring topology, RDMA cost model,
* :mod:`repro.core` -- the Data Cyclotron protocols (the contribution),
* :mod:`repro.dbms` -- a MonetDB-like column engine with a SQL front-end
  and a distributed executor over the ring,
* :mod:`repro.workloads` -- the section 5 experiment workloads,
* :mod:`repro.metrics` -- measurement and report rendering,
* :mod:`repro.xtn` -- the section 6 future-work features.

Quickstart::

    from repro.core import DataCyclotronConfig
    from repro.dbms.executor import RingDatabase

    rdb = RingDatabase(DataCyclotronConfig(n_nodes=4))
    rdb.load_table("t", {"id": [1, 2, 3], "v": [1.0, 2.0, 3.0]})
    handle = rdb.submit("SELECT v FROM t WHERE id >= 2", node=1)
    rdb.run_until_done()
    print(handle.result.rows())
"""

from repro.core import (
    DataCyclotron,
    DataCyclotronConfig,
    LoitController,
    PinStep,
    QuerySpec,
    new_loi,
)
from repro.dbms import Database
from repro.dbms.executor import RingDatabase

__version__ = "1.0.0"

__all__ = [
    "DataCyclotron",
    "DataCyclotronConfig",
    "Database",
    "LoitController",
    "PinStep",
    "QuerySpec",
    "RingDatabase",
    "__version__",
    "new_loi",
]
