"""Gateway-failure handling for the multi-ring federation.

Gateways are ordinary ring nodes with an extra duty, so they die like
ordinary ring nodes: an omniscient ``crash_node`` announces itself as
:class:`~repro.events.types.NodeCrashed` on the ring's bus, while a
silent ``fail_node`` is only acted upon once the ring's own failure
detector publishes ``NodeConfirmedDead`` -- the guard never peeks at
injector state (the same discipline as
:class:`~repro.resilience.manager.ResilienceManager`).

On a gateway death the guard:

1. purges the ring's *outgoing* inter-ring endpoints (queued cross-ring
   messages lived in the dead node's memory; requester-side fetch
   timers re-dispatch the lost ones),
2. aborts every in-flight migration touching the ring (the payload
   never leaves the source before the cutover, so abort is a rollback
   to a consistent state),
3. elects replacement gateways from the ring's live members and
   publishes ``GatewayFailed`` / ``GatewayElected`` on the federation
   bus.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.events import types as ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.multiring.federation import RingFederation

__all__ = ["GatewayGuard"]


class GatewayGuard:
    """Keeps every ring's inter-ring endpoints on live nodes."""

    def __init__(self, fed: "RingFederation"):
        self.fed = fed
        self.bus = fed.bus
        self.sim = fed.sim
        for ring_id, ring in enumerate(fed.rings):
            ring.bus.subscribe(
                ev.NodeCrashed,
                lambda e, _r=ring_id: self._on_down(_r, e.node),
            )
            ring.bus.subscribe(
                ev.NodeConfirmedDead,
                lambda e, _r=ring_id: self._on_down(_r, e.node),
            )
            ring.bus.subscribe(
                ev.NodeRejoined,
                lambda e, _r=ring_id: self._on_up(_r),
            )

    # ------------------------------------------------------------------
    def _live_candidates(self, ring_id: int) -> List[int]:
        ring = self.fed.rings[ring_id]
        down = set()
        if ring.resilience is not None:
            down = set(ring.resilience.known_down)
        return [
            n for n in range(ring.config.n_nodes)
            if ring.ring.is_alive(n) and n not in down and not ring.nodes[n].crashed
        ]

    def _on_down(self, ring_id: int, node: int) -> None:
        router = self.fed.router
        if router is None or node not in router.gateways.get(ring_id, []):
            return
        if self.bus.active:
            self.bus.publish(ev.GatewayFailed(self.sim.now, ring_id, node))
        router.purge_outgoing(ring_id)
        self.fed.placement.abort_for_ring(ring_id, "gateway failed")
        self._elect(ring_id)
        if self.fed.config.serve_handoff:
            router.handoff_serves(ring_id, node)

    def _on_up(self, ring_id: int) -> None:
        """A node rejoined: re-seat the gateway set on the lowest ids."""
        self._elect(ring_id)

    def _elect(self, ring_id: int) -> None:
        router = self.fed.router
        want = min(self.fed.config.gateways_per_ring, self.fed.config.nodes_per_ring)
        candidates = self._live_candidates(ring_id)
        elected = candidates[:want]
        if not elected:
            return  # no live node left; fetches to this ring will time out
        previous = router.gateways.get(ring_id, [])
        if elected == previous:
            return
        router.set_gateways(ring_id, elected)
        if self.bus.active:
            for node in elected:
                if node not in previous:
                    self.bus.publish(ev.GatewayElected(self.sim.now, ring_id, node))
