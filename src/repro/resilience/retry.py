"""Query retry/failover: attempts, backoff, deadlines, epoch suppression.

A logical query submitted through the :class:`QueryRetrier` is executed
as a sequence of *attempts*.  Each attempt is an ordinary
:class:`~repro.core.query.QuerySpec` dispatched through the facade --
but retries carry a fresh query id from a reserved namespace, so the
per-attempt bookkeeping (metrics records, S2/S3 state, events) of a
superseded attempt can never clobber the attempt that replaced it.

Failover policy:

* attempts that fail with a *retryable* error (``NODE_CRASHED``,
  ``DATA_UNAVAILABLE``) are re-dispatched to a believed-live node with
  exponential backoff and +-jitter,
* attempts are capped (``retry_max_attempts``) and optionally bounded by
  a per-query deadline measured from the first arrival,
* an optional per-attempt timeout abandons an attempt that produced no
  outcome and re-dispatches immediately; the superseded attempt keeps
  running to its natural end (killing it would corrupt ring state) but
  its eventual result is discarded by the epoch tag and published as
  :class:`~repro.events.types.StaleResultDiscarded`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.query import QuerySpec
from repro.core.runtime import DATA_UNAVAILABLE, NODE_CRASHED
from repro.events import types as ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.manager import ResilienceManager

__all__ = ["QueryRetrier", "RetryState", "ATTEMPT_ID_BASE"]

# Retry attempts draw query ids from this namespace so they can never
# collide with workload-assigned ids.
ATTEMPT_ID_BASE = 1_000_000_000

RETRYABLE = frozenset({NODE_CRASHED, DATA_UNAVAILABLE})


@dataclass
class RetryState:
    """Lifecycle of one logical query under the retry manager."""

    spec: QuerySpec
    deadline: Optional[float]
    attempts: int = 0
    epoch: int = 0              # bumped per dispatch; stale attempts mismatch
    done: bool = False
    succeeded: bool = False
    shed: bool = False
    error: Optional[str] = None
    finished_at: Optional[float] = None
    attempt_nodes: List[int] = field(default_factory=list)
    _timer: object = None       # pending attempt-timeout Event, if any

    @property
    def latency(self) -> Optional[float]:
        """Arrival-to-final-completion latency of a successful query."""
        if not self.succeeded or self.finished_at is None:
            return None
        return self.finished_at - self.spec.arrival


class QueryRetrier:
    """Dispatches logical queries as retryable attempts on the facade."""

    def __init__(self, manager: "ResilienceManager"):
        self.manager = manager
        self.dc = manager.dc
        self.sim = manager.sim
        self.bus = manager.bus
        self.config = manager.config
        self.rng = self.dc.rng.stream("retry")
        self.states: Dict[int, RetryState] = {}
        self._next_attempt_id = ATTEMPT_ID_BASE
        # retry budget: a token bucket capping retry *amplification*
        # (docs/overload.md).  None = unlimited, the historical behaviour.
        self._budget_tokens: Optional[float] = self.config.retry_budget_capacity
        self._budget_last = 0.0
        self.budget_exhausted = 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, spec: QuerySpec) -> RetryState:
        """Admit (or shed) one logical query and dispatch its first attempt."""
        if spec.query_id in self.states:
            raise ValueError(f"query {spec.query_id} already managed")
        deadline = (
            spec.arrival + self.config.retry_deadline
            if self.config.retry_deadline is not None
            else None
        )
        state = RetryState(spec=spec, deadline=deadline)
        self.states[spec.query_id] = state
        overload = getattr(self.manager, "overload", None)
        if self.manager.shedding or (
            overload is not None and not overload.admit(spec)
        ):
            state.done = True
            state.shed = True
            state.error = "SHED"
            state.finished_at = self.sim.now
            self.bus.publish(ev.QueryShed(self.sim.now, spec.query_id, spec.node))
            return state
        self._dispatch(state, preferred=spec.node, arrival=spec.arrival)
        return state

    # ------------------------------------------------------------------
    # attempt machinery
    # ------------------------------------------------------------------
    def _dispatch(self, state: RetryState, preferred: int, arrival: float) -> None:
        node = self.manager.route(preferred)
        state.attempts += 1
        state.epoch += 1
        epoch = state.epoch
        state.attempt_nodes.append(node)
        if state.attempts == 1:
            attempt_id = state.spec.query_id
        else:
            attempt_id = self._next_attempt_id
            self._next_attempt_id += 1
        attempt = replace(state.spec, query_id=attempt_id, node=node, arrival=arrival)
        proc = self.dc.submit(attempt)
        proc.join().add_callback(
            lambda error, _s=state, _e=epoch: self._attempt_done(_s, _e, error)
        )
        if self.config.retry_attempt_timeout is not None:
            delay = (arrival - self.sim.now) + self.config.retry_attempt_timeout
            state._timer = self.sim.schedule(
                delay, self._attempt_timed_out, state, epoch
            )
        if state.attempts > 1:
            self.bus.publish(
                ev.QueryRetried(
                    self.sim.now,
                    state.spec.query_id,
                    state.attempts,
                    node,
                    state.error or "",
                )
            )

    def _cancel_timer(self, state: RetryState) -> None:
        if state._timer is not None:
            state._timer.cancel()
            state._timer = None

    def _attempt_done(self, state: RetryState, epoch: int, error) -> None:
        if state.done or epoch != state.epoch:
            self.bus.publish(
                ev.StaleResultDiscarded(self.sim.now, state.spec.query_id, epoch)
            )
            return
        self._cancel_timer(state)
        if error is None:
            state.done = True
            state.succeeded = True
            state.finished_at = self.sim.now
            return
        state.error = error
        if error not in RETRYABLE:
            self._terminal(state, error)
            return
        if state.attempts >= self.config.retry_max_attempts:
            self._terminal(state, error)
            return
        backoff = min(
            self.config.retry_backoff_initial
            * self.config.retry_backoff_base ** (state.attempts - 1),
            self.config.retry_backoff_cap,
        )
        if self.config.retry_jitter > 0:
            backoff *= 1.0 + self.config.retry_jitter * self.rng.uniform(-1.0, 1.0)
        arrival = self.sim.now + backoff
        if state.deadline is not None and arrival > state.deadline:
            self._terminal(state, error)
            return
        if not self._budget_allows(state):
            self._terminal(state, error)
            return
        # fail over: search for a live node starting past the failed one
        failed_node = state.attempt_nodes[-1]
        self._dispatch(state, preferred=failed_node + 1, arrival=arrival)

    def _attempt_timed_out(self, state: RetryState, epoch: int) -> None:
        if state.done or epoch != state.epoch:
            return
        state._timer = None
        state.error = state.error or "ATTEMPT_TIMEOUT"
        if (
            state.attempts >= self.config.retry_max_attempts
            or (state.deadline is not None and self.sim.now >= state.deadline)
        ):
            self._terminal(state, "ATTEMPT_TIMEOUT")
            return
        if not self._budget_allows(state):
            self._terminal(state, "ATTEMPT_TIMEOUT")
            return
        # supersede the stuck attempt (its eventual completion is
        # discarded by the epoch tag) and re-dispatch immediately
        failed_node = state.attempt_nodes[-1]
        self._dispatch(state, preferred=failed_node + 1, arrival=self.sim.now)

    def _budget_allows(self, state: RetryState) -> bool:
        """Take one retry token, refilling lazily; False = budget dry."""
        if self._budget_tokens is None:
            return True
        capacity = self.config.retry_budget_capacity
        refill = self.config.retry_budget_refill
        now = self.sim.now
        if refill > 0:
            self._budget_tokens = min(
                capacity, self._budget_tokens + (now - self._budget_last) * refill
            )
        self._budget_last = now
        if self._budget_tokens >= 1.0:
            self._budget_tokens -= 1.0
            return True
        self.budget_exhausted += 1
        self.bus.publish(
            ev.RetryBudgetExhausted(now, state.spec.query_id, state.attempts)
        )
        return False

    def _terminal(self, state: RetryState, error: str) -> None:
        self._cancel_timer(state)
        state.done = True
        state.error = error
        state.finished_at = self.sim.now
        self.bus.publish(
            ev.QueryAbandoned(
                self.sim.now, state.spec.query_id, state.attempts, error
            )
        )

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return all(s.done for s in self.states.values())

    def latencies(self) -> List[float]:
        """Arrival-to-completion latencies of the successful queries."""
        out = [s.latency for s in self.states.values()]
        return [x for x in out if x is not None]

    def counts(self) -> Dict[str, int]:
        states = self.states.values()
        return {
            "managed": len(self.states),
            "succeeded": sum(1 for s in states if s.succeeded),
            "failed": sum(
                1 for s in states if s.done and not s.succeeded and not s.shed
            ),
            "shed": sum(1 for s in states if s.shed),
            "attempts": sum(s.attempts for s in states),
        }
