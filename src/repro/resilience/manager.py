"""The resilience control loop: detection -> repair -> retry -> shed.

One :class:`ResilienceManager` per deployment (constructed by the
facade when ``config.resilience`` is on).  It owns

* one :class:`~repro.resilience.detector.SuccessorMonitor` per node,
  fed by wrapping every node's incoming request-channel receiver (so
  forwarded requests count as liveness traffic) and padded with
  periodic :class:`~repro.core.messages.HeartbeatMessage` beacons,
* the confirmation policy: a confirmed-dead successor that is really
  down triggers :meth:`DataCyclotron.repair_after_failure` -- repair is
  driven by the protocol, not by the fault injector,
* the :class:`~repro.resilience.retry.QueryRetrier` for query failover,
* the admission valve: while at least ``admission_suspect_fraction`` of
  the ring is known-dead or suspected, new queries are shed (fast-fail)
  instead of being allowed to storm a partitioned ring with retries.

Detection knowledge is deliberately *not* omniscient: routing and
shedding consult only what the detector has published (``known_down``
and live suspicions), never ``ring.is_alive`` -- the single exception
is the guard that refuses to evict a falsely-accused live node, a stand-
in for the membership consensus a real deployment would run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from repro.core.messages import HeartbeatMessage
from repro.core.query import QuerySpec
from repro.events import types as ev
from repro.resilience.detector import SuccessorMonitor
from repro.resilience.retry import QueryRetrier, RetryState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ring import DataCyclotron

__all__ = ["ResilienceManager"]


class ResilienceManager:
    """Failure detection, detector-driven repair, retry and admission."""

    def __init__(self, dc: "DataCyclotron"):
        self.dc = dc
        self.sim = dc.sim
        self.bus = dc.bus
        self.config = dc.config
        n = self.config.n_nodes
        self.monitors: List[SuccessorMonitor] = [
            SuccessorMonitor(
                node_id=i,
                window_capacity=self.config.heartbeat_window,
                prior=self.config.heartbeat_interval,
            )
            for i in range(n)
        ]
        # nodes the detector has confirmed dead (cleared on rejoin)
        self.known_down: Set[int] = set()
        self.retrier = QueryRetrier(self)
        # optional closed-loop overload controller (docs/overload.md);
        # when attached, its admit() gates submission alongside the
        # detector-driven shedding valve
        self.overload = None
        self._started = False
        self.bus.subscribe(ev.NodeRejoined, self._on_rejoin)
        # Monitors track the *physical wiring*, which changes only when
        # the facade rewires the ring.  Retargeting from liveness flags
        # instead would leak injector knowledge: the monitor would skip
        # past a silently-failed node before ever detecting it.
        self.bus.subscribe(ev.NodeCrashed, self._on_rewire)
        self.bus.subscribe(ev.NodeRejoined, self._on_rewire)
        self.bus.subscribe(ev.RingRepaired, self._on_rewire)
        # interpose on every node's incoming request stream; rewire()
        # re-reads the installed receivers, so the wrappers survive
        # every topology change
        for i, node in enumerate(dc.nodes):
            dc.ring.install_node(
                i, node.on_bat_message, self._wrap_request_receiver(i)
            )

    # ------------------------------------------------------------------
    # liveness observation
    # ------------------------------------------------------------------
    def _wrap_request_receiver(self, node_id: int):
        node = self.dc.nodes[node_id]
        monitor = self.monitors[node_id]
        original = node.on_request_message

        def receive(msg, size):
            if isinstance(msg, HeartbeatMessage):
                # beacons carry their sender: one in flight across a
                # topology change must not refresh the wrong target
                if (
                    not node.crashed
                    and monitor.target is not None
                    and msg.sender == monitor.target
                ):
                    self._note_arrival(monitor)
                return
            if not node.crashed and monitor.target is not None:
                self._note_arrival(monitor)
            original(msg, size)

        return receive

    def _note_arrival(self, monitor: SuccessorMonitor) -> None:
        now = self.sim.now
        monitor.note_arrival(now)
        if monitor.suspected:
            monitor.suspected = False
            self.bus.publish(
                ev.NodeSuspicionCleared(now, monitor.target, monitor.node_id)
            )

    # ------------------------------------------------------------------
    # periodic ticks (scheduled by the facade's _start_ticks)
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        now = self.sim.now
        interval = self.config.heartbeat_interval
        for i in range(self.config.n_nodes):
            self._retarget(self.monitors[i], now)
            self.sim.post(interval, self._beacon, i)
            self.sim.post(interval, self._check, i)

    def _beacon(self, node_id: int) -> None:
        node = self.dc.nodes[node_id]
        if not node.crashed:
            node.out_request.send(
                HeartbeatMessage(node_id), self.config.request_message_size
            )
        self.sim.post(self.config.heartbeat_interval, self._beacon, node_id)

    def _retarget(self, monitor: SuccessorMonitor, now: float) -> None:
        """Point the monitor at the node's currently-wired successor."""
        node_id = monitor.node_id
        if self.dc.nodes[node_id].crashed or node_id not in self.dc.members:
            if monitor.target is not None:
                monitor.reset(None, now)
            return
        succ = self.dc.wired_successor(node_id)
        target = succ if succ != node_id else None
        if target != monitor.target:
            monitor.reset(target, now)

    def _on_rewire(self, _event) -> None:
        """The facade rewired the ring: refresh every monitor's target."""
        now = self.sim.now
        for monitor in self.monitors:
            self._retarget(monitor, now)

    def _check(self, node_id: int) -> None:
        monitor = self.monitors[node_id]
        now = self.sim.now
        node = self.dc.nodes[node_id]
        if node.crashed:
            if monitor.target is not None:
                monitor.reset(None, now)
        elif monitor.target is not None:
            target = monitor.target
            phi = monitor.phi(now)
            if phi >= self.config.phi_confirm:
                self._confirm(monitor, target, phi)
            elif phi >= self.config.phi_suspect and not monitor.suspected:
                monitor.suspected = True
                self.bus.publish(ev.NodeSuspected(now, target, node_id, phi))
        self.sim.post(self.config.heartbeat_interval, self._check, node_id)

    def _confirm(self, monitor: SuccessorMonitor, target: int, phi: float) -> None:
        now = self.sim.now
        if self.dc.ring.is_alive(target):
            # A live node crossed the confirmation threshold (e.g. its
            # outgoing request link is blackholed).  A real deployment
            # would run membership consensus before eviction; the
            # simulator keeps the node suspected and waits for traffic.
            if not monitor.suspected:
                monitor.suspected = True
                self.bus.publish(
                    ev.NodeSuspected(now, target, monitor.node_id, phi)
                )
            return
        monitor.suspected = False
        self.known_down.add(target)
        self.bus.publish(ev.NodeConfirmedDead(now, target, monitor.node_id, phi))
        if target in self.dc.unrepaired_failures:
            self.dc.repair_after_failure(target)
        self._retarget(monitor, now)

    def _on_rejoin(self, event: ev.NodeRejoined) -> None:
        self.known_down.discard(event.node)

    # ------------------------------------------------------------------
    # admission + routing (detected knowledge only)
    # ------------------------------------------------------------------
    @property
    def suspected_targets(self) -> Set[int]:
        return {m.target for m in self.monitors if m.suspected and m.target is not None}

    @property
    def shedding(self) -> bool:
        down = self.known_down | self.suspected_targets
        return (
            len(down) / self.config.n_nodes
            >= self.config.admission_suspect_fraction
        )

    def route(self, preferred: int) -> int:
        """First believed-live node at or clockwise of ``preferred``."""
        n = self.config.n_nodes
        avoid = self.known_down | self.suspected_targets
        for step in range(n):
            candidate = (preferred + step) % n
            if candidate not in avoid:
                return candidate
        return preferred % n

    def submit(self, spec: QuerySpec) -> RetryState:
        """Submit one logical query under retry/failover management."""
        return self.retrier.submit(spec)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Deterministic headline numbers for reports and summaries."""
        counts = self.retrier.counts()
        latencies = sorted(self.retrier.latencies())
        p99 = 0.0
        if latencies:
            rank = max(0, -(-99 * len(latencies) // 100) - 1)  # ceil, 1-based
            p99 = latencies[rank]
        return {
            "resilient_queries": counts["managed"],
            "resilient_succeeded": counts["succeeded"],
            "resilient_failed": counts["failed"],
            "resilient_shed": counts["shed"],
            "resilient_attempts": counts["attempts"],
            "resilient_p99_latency": round(p99, 6),
        }
