"""Closed-loop overload control (docs/overload.md).

The admission machinery that predates this module is *open loop*: the
detector-driven shedding valve of :class:`ResilienceManager` reacts to
membership, the count/byte valves of :class:`RingDatabase` react to
instantaneous inflight pressure -- neither looks at whether the
deployment is actually meeting its latency objective.  The
:class:`OverloadController` closes that loop.

It subscribes to the query lifecycle on every ring bus, folds finishes
and sheds into a sliding :class:`~repro.metrics.window.WindowedHealth`
(rolling p99, throughput, shed rate -- per engine class and combined),
and runs a periodic control tick that compares the rolling p99 against
the SLO target:

* **brownout** -- while the p99 is above target, the shed level rises
  one priority tier per tick: tier-0 (best effort) traffic is refused
  first, the top tier last.  Recovery is hysteretic: the level steps
  down only after ``recover_patience`` consecutive ticks below
  ``recover_fraction`` of the target, so the valve does not flap.
* **byte backstop** -- an optional inflight-byte budget; lower tiers
  get proportionally smaller slices, and an empty valve always admits
  so progress is guaranteed.
* **topology guard** -- while fragment migrations are in flight (or
  just finished), the *effective* shed level is tightened by
  ``topology_guard_tiers``: a ring split already pays a migration tax,
  and admitting the full load on top of it is how overload turns into
  collapse.
* **split nudge** -- after ``split_nudge_ticks`` consecutive overloaded
  ticks on a federation, the controller asks the split/merge controller
  to activate a standby ring for the busiest active ring, instead of
  waiting for the buffer-load watermarks to notice.

The controller is strictly opt-in: nothing constructs one unless a
scenario (or user code) does, so the default event streams are
bit-identical to the pre-controller goldens.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from repro.core.query import QuerySpec
from repro.events import types as ev
from repro.metrics.window import WindowedHealth

__all__ = ["OverloadPolicy", "OverloadController"]


@dataclass(frozen=True)
class OverloadPolicy:
    """Knobs of one closed-loop overload controller."""

    # the objective: rolling p99 of admitted-query latency, seconds
    target_p99: float
    # sliding window the health signals are computed over, seconds
    window: float = 2.0
    # control tick period, seconds
    tick_interval: float = 0.25
    # number of priority tiers (QuerySpec.tier in [0, n_tiers))
    n_tiers: int = 3
    # don't judge the p99 until the window holds this many finishes
    min_samples: int = 16
    # hysteresis: recovery requires p99 <= recover_fraction * target ...
    recover_fraction: float = 0.6
    # ... for this many consecutive ticks before the level steps down
    recover_patience: int = 4
    # optional inflight-byte backstop (None = no byte valve)
    byte_budget: Optional[int] = None
    # extra tiers shed while fragment migrations are in flight/recent
    topology_guard_tiers: int = 1
    # how long after the last migration the guard stays engaged, seconds
    topology_guard_window: float = 1.0
    # consecutive overloaded ticks before nudging a ring split (0 = off)
    split_nudge_ticks: int = 0

    def __post_init__(self) -> None:
        if self.target_p99 <= 0:
            raise ValueError("target_p99 must be positive")
        if self.n_tiers < 1:
            raise ValueError("n_tiers must be at least 1")
        if not 0.0 < self.recover_fraction <= 1.0:
            raise ValueError("recover_fraction must be in (0, 1]")
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")


class OverloadController:
    """SLO-driven admission over one deployment (ring or federation)."""

    def __init__(
        self,
        deployment,
        policy: OverloadPolicy,
        size_of: Optional[Callable[[int], int]] = None,
    ) -> None:
        self.deployment = deployment
        self.policy = policy
        self.sim = deployment.sim
        rings = getattr(deployment, "rings", None)
        self._ring_buses = [r.bus for r in rings] if rings else [deployment.bus]
        # the control bus: where state changes and tier sheds are
        # published (the federation bus for a federation, the ring bus
        # for a classic deployment)
        self.bus = deployment.bus
        if size_of is None:
            bat_size = getattr(deployment, "bat_size", None)
            size_of = bat_size if callable(bat_size) else None
        self._size_of = size_of
        self.health = WindowedHealth(policy.window)

        # admission state
        self.shed_level = 0
        self._healthy_ticks = 0
        self._overloaded_ticks = 0
        self._inflight: Dict[int, int] = {}
        self._inflight_bytes = 0
        self._migrations = 0
        self._last_migration_t = float("-inf")
        self._started = False

        # headline counters (deterministic; surfaced by stats())
        self.offered = 0
        self.offered_by_tier: Dict[int, int] = {}
        self.shed_by_tier: Dict[int, int] = {}
        self.level_changes = 0
        self.max_level = 0

        # per-query records: query_id -> (registered_at, engine class)
        self._registered: Dict[int, float] = {}
        self._engine_of: Dict[int, str] = {}
        self._tier_of: Dict[int, int] = {}
        # queries this controller refused: their QueryShed echo (the
        # caller publishes it) must not be double-counted as health sheds
        self._shed_ids: set = set()

        for bus in self._ring_buses:
            bus.subscribe(ev.QueryRegistered, self._on_registered)
            bus.subscribe(ev.QueryFinished, self._on_finished)
            bus.subscribe(ev.QueryFailed, self._on_failed)
            bus.subscribe(ev.QueryShed, self._on_shed_event)
            bus.subscribe(ev.QpuQueryRouted, self._on_routed)
        if rings:
            self.bus.subscribe(ev.MigrationStarted, self._on_migration_started)
            self.bus.subscribe(ev.FragmentMigrated, self._on_migration_ended)
            self.bus.subscribe(ev.MigrationAborted, self._on_migration_ended)
            self.bus.subscribe(ev.RingSplit, self._on_topology_change)
            self.bus.subscribe(ev.RingsMerged, self._on_topology_change)

    # ------------------------------------------------------------------
    # lifecycle observation
    # ------------------------------------------------------------------
    def _on_registered(self, e: ev.QueryRegistered) -> None:
        self._registered[e.query_id] = e.t

    def _on_routed(self, e: ev.QpuQueryRouted) -> None:
        if e.query_id in self._registered:
            self._engine_of[e.query_id] = e.engine

    def _release(self, query_id: int) -> str:
        self._registered.pop(query_id, None)
        self._tier_of.pop(query_id, None)
        reserved = self._inflight.pop(query_id, None)
        if reserved is not None:
            self._inflight_bytes -= reserved
        return self._engine_of.pop(query_id, "")

    def _on_finished(self, e: ev.QueryFinished) -> None:
        registered = self._registered.get(e.query_id)
        cls = self._release(e.query_id)
        if registered is not None:
            self.health.note_finish(e.t, e.t - registered, cls)

    def _on_failed(self, e: ev.QueryFailed) -> None:
        self._release(e.query_id)

    def _on_shed_event(self, e: ev.QueryShed) -> None:
        # a downstream valve (executor count/byte valve, detector-driven
        # shedding) refused a query: release any reservation and fold
        # the shed into the health signal -- unless this controller was
        # the refuser, in which case admit() already counted it
        if e.query_id in self._shed_ids:
            self._shed_ids.discard(e.query_id)
            return
        cls = self._release(e.query_id)
        self.health.note_shed(e.t, cls or e.engine)

    def _on_migration_started(self, _e) -> None:
        self._migrations += 1

    def _on_migration_ended(self, e) -> None:
        self._migrations = max(0, self._migrations - 1)
        self._last_migration_t = e.t

    def _on_topology_change(self, e) -> None:
        self._last_migration_t = e.t

    # ------------------------------------------------------------------
    # the control loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first control tick (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.post(self.policy.tick_interval, self._tick)

    def predicted_latency(self) -> float:
        """Little's-law drain-time estimate: inflight / throughput.

        The rolling p99 of *completions* is a lagging signal -- a query
        stuck in a 10-second queue only pushes the p99 up when it
        finally finishes, long after admission should have tightened.
        The inflight count over the windowed completion rate predicts
        that latency while the queue is still building.  Throughput is
        floored at one completion per window so an empty window reads
        as slow, not as infinitely fast.
        """
        inflight = len(self._registered)
        if not inflight:
            return 0.0
        throughput = max(
            self.health.throughput(self.sim.now), 1.0 / self.policy.window
        )
        return inflight / throughput

    def _tick(self) -> None:
        now = self.sim.now
        pol = self.policy
        self.health.evict(now)
        count = self.health.sample_count()
        p99 = self.health.p99()
        predicted = self.predicted_latency()
        breached = (count >= pol.min_samples and p99 > pol.target_p99) or (
            len(self._registered) >= pol.min_samples
            and predicted > pol.target_p99
        )
        signal = max(p99, predicted)
        if breached:
            self._healthy_ticks = 0
            self._overloaded_ticks += 1
            if self.shed_level < pol.n_tiers - 1:
                self._set_level(self.shed_level + 1, signal)
            self._maybe_nudge_split()
        else:
            # Recovery judges the *current* regime: stragglers admitted
            # during the episode complete with episode-sized latencies
            # long after conditions improved, so the plain windowed p99
            # would hold the valve shut for a full extra horizon.  The
            # fresh p99 (completions that also started inside the
            # window) decays as soon as newly-admitted queries are fast.
            bar = pol.recover_fraction * pol.target_p99
            fresh = self.health.fresh_p99(now)
            recovered = (
                self.health.fresh_count(now) == 0 or fresh <= bar
            ) and predicted <= bar
            self._overloaded_ticks = 0
            if recovered:
                self._healthy_ticks += 1
                if self._healthy_ticks >= pol.recover_patience and self.shed_level > 0:
                    self._healthy_ticks = 0
                    self._set_level(self.shed_level - 1, signal)
            else:
                self._healthy_ticks = 0
        self.sim.post(pol.tick_interval, self._tick)

    def _set_level(self, level: int, p99: float) -> None:
        self.shed_level = level
        self.level_changes += 1
        self.max_level = max(self.max_level, level)
        if self.bus.active:
            self.bus.publish(ev.OverloadStateChanged(
                self.sim.now, level, self.state, p99, self._inflight_bytes
            ))

    @property
    def state(self) -> str:
        if self.shed_level == 0:
            return "normal"
        if self.shed_level >= self.policy.n_tiers - 1:
            return "overload"
        return "brownout"

    def _maybe_nudge_split(self) -> None:
        pol = self.policy
        if pol.split_nudge_ticks <= 0:
            return
        if self._overloaded_ticks < pol.split_nudge_ticks:
            return
        splitmerge = getattr(self.deployment, "splitmerge", None)
        if splitmerge is None:
            return
        # cooldown: while a migration is in flight (or just drained),
        # another split would only thrash topology the guard is already
        # taxing -- wait out the guard window instead
        if self._migrations > 0 or (
            self.sim.now - self._last_migration_t < pol.topology_guard_window
        ):
            return
        fed = self.deployment
        busiest, busiest_load = None, -1.0
        for ring_id in fed.active_rings:
            nodes = [n for n in fed.rings[ring_id].nodes if not n.crashed]
            if not nodes:
                continue
            load = sum(n.buffer_load for n in nodes) / len(nodes)
            if load > busiest_load:
                busiest, busiest_load = ring_id, load
        self._overloaded_ticks = 0
        if busiest is not None:
            splitmerge.request_split(busiest)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def effective_level(self) -> int:
        """The shed level with the topology guard folded in."""
        level = self.shed_level
        pol = self.policy
        guarded = self._migrations > 0 or (
            self.sim.now - self._last_migration_t < pol.topology_guard_window
        )
        if guarded and level > 0:
            level = min(level + pol.topology_guard_tiers, pol.n_tiers - 1)
        return level

    def admit(self, spec: QuerySpec) -> bool:
        """Decide one query; reserves inflight bytes when admitted.

        Publishes :class:`~repro.events.types.TierShed` on refusal but
        *not* :class:`QueryShed` -- the caller owns that event, so the
        retrier path and the standalone gate each publish exactly one.
        """
        tier = min(getattr(spec, "tier", 0), self.policy.n_tiers - 1)
        self.offered += 1
        self.offered_by_tier[tier] = self.offered_by_tier.get(tier, 0) + 1
        if tier < self.effective_level():
            self._shed_tier(spec, tier)
            return False
        if self.policy.byte_budget is not None and self._size_of is not None:
            need = sum(self._size_of(b) for b in spec.bat_ids)
            cap = self.policy.byte_budget * (tier + 1) / self.policy.n_tiers
            # an empty valve always admits: progress beats the budget
            if self._inflight and self._inflight_bytes + need > cap:
                self._shed_tier(spec, tier)
                return False
            self._inflight[spec.query_id] = need
            self._inflight_bytes += need
        self._tier_of[spec.query_id] = tier
        return True

    def _shed_tier(self, spec: QuerySpec, tier: int) -> None:
        self.shed_by_tier[tier] = self.shed_by_tier.get(tier, 0) + 1
        self._shed_ids.add(spec.query_id)
        self.health.note_shed(self.sim.now, "")
        if self.bus.active:
            self.bus.publish(
                ev.TierShed(self.sim.now, spec.query_id, tier, spec.node)
            )

    # ------------------------------------------------------------------
    # the standalone submission gate
    # ------------------------------------------------------------------
    def submit(self, spec: QuerySpec):
        """Admission-gated ``deployment.submit``.

        Future arrivals are decided *at* their arrival time (the valve
        state then is what matters, not the state at enqueue time).
        Returns the dispatched :class:`~repro.sim.process.Process`, or
        None when the query was shed or deferred.
        """
        if spec.arrival > self.sim.now:
            self.sim.post(spec.arrival - self.sim.now, self._decide, spec)
            return None
        return self._decide(spec)

    def _decide(self, spec: QuerySpec):
        if not self.admit(spec):
            if self.bus.active:
                self.bus.publish(
                    ev.QueryShed(
                        self.sim.now, spec.query_id, spec.node,
                        reason="tier-shed",
                    )
                )
            return None
        if spec.arrival != self.sim.now:
            spec = replace(spec, arrival=self.sim.now)
        return self.deployment.submit(spec)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Deterministic headline numbers for reports and extras."""
        now = self.sim.now
        per_class = {
            cls: {
                "p99": round(self.health.p99(cls), 6),
                "shed_rate": round(self.health.shed_rate(now, cls), 6),
            }
            for cls in self.health.classes()
        }
        return {
            "offered": self.offered,
            "offered_by_tier": dict(sorted(self.offered_by_tier.items())),
            "shed_by_tier": dict(sorted(self.shed_by_tier.items())),
            "level": self.shed_level,
            "max_level": self.max_level,
            "level_changes": self.level_changes,
            "inflight_bytes": self._inflight_bytes,
            "predicted_latency": round(self.predicted_latency(), 6),
            "window_p99": round(self.health.p99(), 6),
            "window_throughput": round(self.health.throughput(now), 6),
            "window_shed_rate": round(self.health.shed_rate(now), 6),
            "per_class": per_class,
        }
