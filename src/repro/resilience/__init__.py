"""Failure detection, query retry/failover and replica promotion.

Everything here goes beyond the paper (which defers node failure to
future work, section 6.3); see docs/resilience.md for the design and
its explicit deviations.  The subsystem is inert unless
``DataCyclotronConfig.resilience`` is set.
"""

from repro.resilience.detector import ArrivalWindow, SuccessorMonitor
from repro.resilience.manager import ResilienceManager
from repro.resilience.overload import OverloadController, OverloadPolicy
from repro.resilience.retry import ATTEMPT_ID_BASE, QueryRetrier, RetryState

__all__ = [
    "ArrivalWindow",
    "SuccessorMonitor",
    "OverloadController",
    "OverloadPolicy",
    "ResilienceManager",
    "QueryRetrier",
    "RetryState",
    "ATTEMPT_ID_BASE",
]
