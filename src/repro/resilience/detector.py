"""Phi-accrual successor monitoring over the anti-clockwise channel.

The paper defers node failure to future work (section 6.3); this module
is the reproduction's failure detector, designed to fit the ring: node
*i* already receives a continuous message stream from its clockwise
successor (forwarded requests travelling anti-clockwise), so each node
monitors exactly one peer -- its current live successor -- and the
:class:`~repro.resilience.manager.ResilienceManager` pads the stream
with periodic :class:`~repro.core.messages.HeartbeatMessage` beacons so
silence is always meaningful.

The suspicion score follows the phi-accrual idea (Hayashibara et al.):
model inter-arrival gaps, and report

    phi(t) = -log10 P(gap > elapsed)

under an exponential model with the windowed mean gap ``mu``:

    phi(t) = log10(e) * elapsed / mu

so phi grows linearly with silence, scaled by the observed traffic rate.
``mu`` is floored at the beacon interval: bursts of forwarded requests
must not shrink the expected gap below the guaranteed beacon cadence,
which would turn ordinary inter-beacon silence into a false accusation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

__all__ = ["ArrivalWindow", "SuccessorMonitor", "PHI_LOG10_E"]

PHI_LOG10_E = 0.4342944819032518  # log10(e)


class ArrivalWindow:
    """Sliding window of inter-arrival gaps with a phi score."""

    __slots__ = ("_gaps", "_floor")

    def __init__(self, capacity: int, prior: float):
        if capacity < 1:
            raise ValueError("window capacity must be >= 1")
        if prior <= 0:
            raise ValueError("prior gap must be positive")
        # seeded with the beacon interval so the first silence after a
        # reset is judged against the guaranteed cadence
        self._gaps: Deque[float] = deque([prior], maxlen=capacity)
        self._floor = prior

    def observe(self, gap: float) -> None:
        self._gaps.append(max(gap, 0.0))

    @property
    def mean(self) -> float:
        return max(sum(self._gaps) / len(self._gaps), self._floor)

    def phi(self, elapsed: float) -> float:
        """Suspicion score for ``elapsed`` seconds of silence."""
        if elapsed <= 0:
            return 0.0
        return PHI_LOG10_E * elapsed / self.mean


class SuccessorMonitor:
    """One node's view of the liveness of its current live successor."""

    __slots__ = ("node_id", "window_capacity", "prior", "target", "window",
                 "last_arrival", "suspected")

    def __init__(self, node_id: int, window_capacity: int, prior: float):
        self.node_id = node_id
        self.window_capacity = window_capacity
        self.prior = prior
        self.target: Optional[int] = None     # who is being monitored
        self.window = ArrivalWindow(window_capacity, prior)
        self.last_arrival = 0.0
        self.suspected = False

    def reset(self, target: Optional[int], now: float) -> None:
        """Point the monitor at a (possibly new) successor, fresh window."""
        self.target = target
        self.window = ArrivalWindow(self.window_capacity, self.prior)
        self.last_arrival = now
        self.suspected = False

    def note_arrival(self, now: float) -> None:
        """Traffic from the monitored successor arrived."""
        self.window.observe(now - self.last_arrival)
        self.last_arrival = now

    def phi(self, now: float) -> float:
        return self.window.phi(now - self.last_arrival)
