"""Measurement plumbing for the experiments of section 5.

The :class:`~repro.metrics.collector.MetricsCollector` is the single
sink every Data Cyclotron component reports to; the experiments then
read the derived artefacts:

* cumulative registered/executed query series (Figure 6a, 8b),
* query life-time histograms (Figure 6b),
* ring-load step series in bytes and #BATs (Figures 7, 8a),
* per-BAT touches / requests / loads / cycles / request latency
  (Figures 9, 10, 11).
"""

from repro.metrics.collector import MetricsCollector, BatStats
from repro.metrics.histogram import Histogram
from repro.metrics.stats import Summary, replicate, summarise
from repro.metrics.timeseries import StepSeries, binned_cumulative
from repro.metrics.window import SampleWindow, WindowedHealth

__all__ = [
    "BatStats",
    "Histogram",
    "MetricsCollector",
    "SampleWindow",
    "StepSeries",
    "Summary",
    "WindowedHealth",
    "binned_cumulative",
    "replicate",
    "summarise",
]
