"""Text rendering of the paper's tables and figure series.

Benchmarks print the same rows/series the paper reports; these helpers
keep that output uniform: fixed-width tables, sparkline-ish series, and
the per-BAT scatter summaries of Figures 9-11.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["render_table", "render_series", "render_distribution", "sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """A fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend("  ".join(c.rjust(w) for c, w in zip(row, widths))
                 for row in cells[1:])
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def sparkline(values: Sequence[float]) -> str:
    """A unicode block sparkline of a numeric series."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BLOCKS[1] * len(values)
    span = hi - lo
    return "".join(
        _BLOCKS[1 + int((v - lo) / span * (len(_BLOCKS) - 2))] for v in values
    )


def render_series(
    name: str,
    times: Sequence[float],
    values: Sequence[float],
    max_points: int = 24,
) -> str:
    """One labelled series: downsampled numbers plus a sparkline."""
    if len(times) != len(values):
        raise ValueError("times and values must align")
    if not times:
        return f"{name}: (empty)"
    step = max(1, len(times) // max_points)
    picked = list(zip(times, values))[::step]
    points = " ".join(f"{t:.0f}s:{v:.0f}" for t, v in picked)
    return f"{name}: {sparkline([v for _, v in picked])}\n  {points}"


def render_distribution(
    name: str,
    per_key: Dict[int, float],
    n_buckets: int = 20,
    key_range: Optional[Tuple[int, int]] = None,
) -> str:
    """Bucket a per-BAT-id metric (Figures 9-11) into a text profile."""
    if not per_key:
        return f"{name}: (empty)"
    keys = sorted(per_key)
    lo, hi = key_range if key_range else (keys[0], keys[-1])
    width = max((hi - lo + 1) // n_buckets, 1)
    buckets: List[float] = []
    labels: List[str] = []
    for start in range(lo, hi + 1, width):
        end = min(start + width - 1, hi)
        vals = [per_key[k] for k in keys if start <= k <= end]
        buckets.append(max(vals) if vals else 0.0)
        labels.append(f"{start}-{end}")
    body = "\n".join(
        f"  {label:>11}: {value:8.2f}" for label, value in zip(labels, buckets)
    )
    return f"{name} (bucket max):\n{body}"
