"""The central metrics sink every Data Cyclotron component reports to."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.metrics.histogram import Histogram
from repro.metrics.timeseries import StepSeries, binned_cumulative

__all__ = ["BatStats", "QueryRecord", "MetricsCollector"]


@dataclass
class BatStats:
    """Per-BAT aggregates feeding Figures 9, 10 and 11."""

    bat_id: int
    touches: int = 0            # copies events: a node pinned the passing BAT
    pins: int = 0               # pin() calls served (incl. local cache hits)
    requests: int = 0           # request messages created for this BAT
    loads: int = 0              # times the owner (re-)loaded it into the ring
    unloads: int = 0
    max_cycles: int = 0         # highest cycle count observed (Fig. 11)
    max_request_latency: float = 0.0   # worst request->pin delay (Fig. 10)
    drops: int = 0              # DropTail losses of this BAT


@dataclass
class QueryRecord:
    """Lifecycle of one query."""

    query_id: int
    node: int
    registered_at: float
    tag: str = ""
    finished_at: Optional[float] = None
    failed: bool = False
    error: Optional[str] = None

    @property
    def lifetime(self) -> Optional[float]:
        """The paper's "query life time": gross time from arrival to finish."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.registered_at


class MetricsCollector:
    """Accumulates everything the section 5 experiments report."""

    def __init__(self) -> None:
        self.queries: Dict[int, QueryRecord] = {}
        self.bats: Dict[int, BatStats] = {}
        # ring load step series (Figures 7a/7b); per-tag series for Fig. 8a
        self.ring_bytes = StepSeries()
        self.ring_bats = StepSeries()
        self.ring_bytes_by_tag: Dict[str, StepSeries] = {}
        self._bat_tags: Dict[int, str] = {}
        # counters
        self.requests_sent = 0
        self.requests_absorbed = 0
        self.requests_forwarded = 0
        self.requests_returned_to_origin = 0
        self.resends = 0
        self.bat_messages_forwarded = 0
        self.droptail_drops = 0
        self.loss_drops = 0
        self.pending_postponed = 0
        self.loit_changes = 0

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------
    def query_registered(self, t: float, query_id: int, node: int, tag: str = "") -> None:
        self.queries[query_id] = QueryRecord(
            query_id=query_id, node=node, registered_at=t, tag=tag
        )

    def query_finished(self, t: float, query_id: int) -> None:
        self.queries[query_id].finished_at = t

    def query_failed(self, t: float, query_id: int, error: str) -> None:
        rec = self.queries[query_id]
        rec.finished_at = t
        rec.failed = True
        rec.error = error

    # ------------------------------------------------------------------
    # BAT lifecycle
    # ------------------------------------------------------------------
    def bat_stats(self, bat_id: int) -> BatStats:
        stats = self.bats.get(bat_id)
        if stats is None:
            stats = BatStats(bat_id=bat_id)
            self.bats[bat_id] = stats
        return stats

    def tag_bat(self, bat_id: int, tag: str) -> None:
        """Attach a workload tag (e.g. ``dh2``) for per-set ring-load series."""
        self._bat_tags[bat_id] = tag
        self.ring_bytes_by_tag.setdefault(tag, StepSeries())

    def bat_loaded(self, t: float, bat_id: int, size: int) -> None:
        self.bat_stats(bat_id).loads += 1
        self.ring_bytes.add(t, size)
        self.ring_bats.add(t, 1)
        tag = self._bat_tags.get(bat_id)
        if tag is not None:
            self.ring_bytes_by_tag[tag].add(t, size)

    def bat_unloaded(self, t: float, bat_id: int, size: int) -> None:
        self.bat_stats(bat_id).unloads += 1
        self.ring_bytes.add(t, -size)
        self.ring_bats.add(t, -1)
        tag = self._bat_tags.get(bat_id)
        if tag is not None:
            self.ring_bytes_by_tag[tag].add(t, -size)

    def bat_touched(self, t: float, bat_id: int) -> None:
        self.bat_stats(bat_id).touches += 1

    def bat_pinned(self, t: float, bat_id: int, count: int = 1) -> None:
        self.bat_stats(bat_id).pins += count

    def bat_cycle(self, t: float, bat_id: int, cycles: int) -> None:
        stats = self.bat_stats(bat_id)
        stats.max_cycles = max(stats.max_cycles, cycles)

    def bat_dropped(self, t: float, bat_id: int, size: int, by_loss: bool) -> None:
        self.bat_stats(bat_id).drops += 1
        if by_loss:
            self.loss_drops += 1
        else:
            self.droptail_drops += 1
        # a dropped BAT leaves the ring without an unload event
        self.ring_bytes.add(t, -size)
        self.ring_bats.add(t, -1)
        tag = self._bat_tags.get(bat_id)
        if tag is not None:
            self.ring_bytes_by_tag[tag].add(t, -size)

    def request_created(self, t: float, bat_id: int) -> None:
        self.bat_stats(bat_id).requests += 1
        self.requests_sent += 1

    def request_served(self, t: float, bat_id: int, latency: float) -> None:
        stats = self.bat_stats(bat_id)
        stats.max_request_latency = max(stats.max_request_latency, latency)

    # ------------------------------------------------------------------
    # derived artefacts
    # ------------------------------------------------------------------
    def lifetimes(self, tag: Optional[str] = None) -> List[float]:
        return [
            rec.lifetime
            for rec in self.queries.values()
            if rec.lifetime is not None
            and not rec.failed
            and (tag is None or rec.tag == tag)
        ]

    def lifetime_histogram(self, bin_width: float = 5.0, tag: Optional[str] = None) -> Histogram:
        hist = Histogram(bin_width=bin_width)
        hist.extend(self.lifetimes(tag))
        return hist

    def finished_count(self, tag: Optional[str] = None) -> int:
        return sum(
            1
            for rec in self.queries.values()
            if rec.finished_at is not None
            and not rec.failed
            and (tag is None or rec.tag == tag)
        )

    def registered_times(self, tag: Optional[str] = None) -> List[float]:
        return [
            rec.registered_at
            for rec in self.queries.values()
            if tag is None or rec.tag == tag
        ]

    def finished_times(self, tag: Optional[str] = None) -> List[float]:
        return [
            rec.finished_at
            for rec in self.queries.values()
            if rec.finished_at is not None
            and not rec.failed
            and (tag is None or rec.tag == tag)
        ]

    def throughput_series(
        self, end: float, step: float = 1.0, tag: Optional[str] = None
    ) -> Tuple[List[float], List[int]]:
        """Cumulative executed queries over time (Figure 6a / 8b)."""
        return binned_cumulative(self.finished_times(tag), end, step)

    def registered_series(
        self, end: float, step: float = 1.0, tag: Optional[str] = None
    ) -> Tuple[List[float], List[int]]:
        return binned_cumulative(self.registered_times(tag), end, step)

    def all_finished(self) -> bool:
        return all(rec.finished_at is not None for rec in self.queries.values())
