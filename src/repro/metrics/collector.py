"""The central metrics sink every Data Cyclotron component reports to."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.histogram import Histogram
from repro.metrics.timeseries import StepSeries, binned_cumulative

__all__ = ["BatStats", "QueryRecord", "MetricsCollector"]


@dataclass
class BatStats:
    """Per-BAT aggregates feeding Figures 9, 10 and 11."""

    bat_id: int
    touches: int = 0            # copies events: a node pinned the passing BAT
    pins: int = 0               # pin() calls served (incl. local cache hits)
    requests: int = 0           # request messages created for this BAT
    loads: int = 0              # times the owner (re-)loaded it into the ring
    unloads: int = 0
    max_cycles: int = 0         # highest cycle count observed (Fig. 11)
    max_request_latency: float = 0.0   # worst request->pin delay (Fig. 10)
    drops: int = 0              # DropTail losses of this BAT


@dataclass
class QueryRecord:
    """Lifecycle of one query."""

    query_id: int
    node: int
    registered_at: float
    tag: str = ""
    finished_at: Optional[float] = None
    failed: bool = False
    error: Optional[str] = None
    # degraded = finished, but only after fault recovery intervened
    # (resend, re-homed owner, or an orphaned-copy serve)
    degraded: bool = False

    @property
    def lifetime(self) -> Optional[float]:
        """The paper's "query life time": gross time from arrival to finish."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.registered_at


class MetricsCollector:
    """Accumulates everything the section 5 experiments report."""

    def __init__(self) -> None:
        self.queries: Dict[int, QueryRecord] = {}
        self.bats: Dict[int, BatStats] = {}
        # ring load step series (Figures 7a/7b); per-tag series for Fig. 8a
        self.ring_bytes = StepSeries()
        self.ring_bats = StepSeries()
        self.ring_bytes_by_tag: Dict[str, StepSeries] = {}
        self._bat_tags: Dict[int, str] = {}
        # counters
        self.requests_sent = 0
        self.requests_absorbed = 0
        self.requests_forwarded = 0
        self.requests_returned_to_origin = 0
        self.resends = 0
        self.bat_messages_forwarded = 0
        self.droptail_drops = 0
        self.loss_drops = 0
        self.pending_postponed = 0
        self.loit_changes = 0
        # fault-injection counters (docs/faults.md)
        self.crash_drops = 0            # messages purged from a dead node's queues
        self.bats_rehomed = 0           # ownership transfers off a dead node
        self.bats_adopted = 0           # circulating copies adopted by a new owner
        self.orphans_retired = 0        # dead-owner copies pulled out of the ring
        self.requests_unavailable = 0   # requests failed with DATA_UNAVAILABLE
        # resilience counters (docs/resilience.md)
        self.nodes_failed = 0           # silent failures (fail_node)
        self.node_suspicions = 0        # NodeSuspected events
        self.suspicions_cleared = 0     # NodeSuspicionCleared events
        self.nodes_confirmed_dead = 0   # NodeConfirmedDead events
        self.ring_repairs = 0           # detector-driven ring repairs
        self.repair_latencies: List[float] = []  # failure -> repair, seconds
        self.resends_abandoned = 0      # resend escalations that gave up
        self.bats_promoted = 0          # replica owners promoted to primary
        self.queries_retried = 0        # retry attempts dispatched (>= 2nd)
        self.queries_abandoned = 0      # retry budget/deadline exhausted
        self.queries_shed = 0           # admission valve fast-fails
        self.stale_results_discarded = 0  # superseded attempt completions
        # closed-loop overload control counters (docs/overload.md)
        self.queries_shed_by_engine: Dict[str, int] = {}  # byte-valve refusals
        self.queries_shed_by_tier: Dict[int, int] = {}    # brownout refusals
        self.queries_shed_by_reason: Dict[str, int] = {}  # who refused (docs/frontdoor.md)
        self.overload_state_changes = 0  # OverloadStateChanged events
        self.retry_budget_exhausted = 0  # retry token bucket ran dry
        # multi-ring federation counters (docs/multiring.md)
        self.ring_leaves_volunteered = 0  # RingLeaveVolunteered events
        self.ring_join_calls = 0        # RingJoinCalled events
        self.cross_ring_requests = 0    # fetches dispatched to another ring
        self.cross_ring_transfers = 0   # BAT copies shipped between rings
        self.queries_shipped = 0        # whole queries moved to another ring
        self.migrations_started = 0     # fragment re-homings begun
        self.fragments_migrated = 0     # fragment re-homings completed
        self.migrations_aborted = 0     # re-homings rolled back mid-flight
        self.ring_splits = 0            # standby rings activated
        self.rings_merged = 0           # underutilized rings drained
        self.gateway_failures = 0       # gateway nodes lost
        self.gateway_elections = 0      # replacement gateways designated
        self.serves_handed_off = 0      # in-flight serves moved off dead gateways

        self.queries_by_engine: Dict[str, int] = {}  # QPU routing counts
        self.kv_probes = 0              # KV point lookups served
        self.kv_misses = 0              # lookups for unknown keys
        self.stream_bats_consumed = 0   # partitions folded in cycle order
        self.stream_rows_consumed = 0   # rows behind those folds
        # front-door serving tier counters (docs/frontdoor.md)
        self.queries_estimated = 0      # requests priced before compilation
        self.frontdoor_admitted = 0     # requests passed into the dispatcher
        self.frontdoor_rejected = 0     # requests refused at the door
        self.frontdoor_rejected_by_tier: Dict[int, int] = {}
        self.estimate_feedback_count = 0  # predicted-vs-actual closures
        self.estimate_exact_bytes = 0     # ... where prediction was exact
        # per-node downtime intervals: node -> [(down_at, up_at | None)]
        self.downtime: Dict[int, List[List[Optional[float]]]] = {}
        # recovery latency: crash/rejoin -> first re-load of an affected BAT
        self._recovering_bats: Dict[int, float] = {}
        self.recovery_latencies: List[float] = []

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------
    def query_registered(self, t: float, query_id: int, node: int, tag: str = "") -> None:
        self.queries[query_id] = QueryRecord(
            query_id=query_id, node=node, registered_at=t, tag=tag
        )

    def query_finished(self, t: float, query_id: int) -> None:
        self.queries[query_id].finished_at = t

    def query_failed(self, t: float, query_id: int, error: str) -> None:
        rec = self.queries[query_id]
        rec.finished_at = t
        rec.failed = True
        rec.error = error

    # ------------------------------------------------------------------
    # query processing units (docs/qpu.md)
    # ------------------------------------------------------------------
    def qpu_routed(self, engine: str) -> None:
        self.queries_by_engine[engine] = self.queries_by_engine.get(engine, 0) + 1

    def kv_probe(self, hit: bool) -> None:
        self.kv_probes += 1
        if not hit:
            self.kv_misses += 1

    def stream_bat_consumed(self, rows: int) -> None:
        self.stream_bats_consumed += 1
        self.stream_rows_consumed += rows

    # ------------------------------------------------------------------
    # front-door serving tier (docs/frontdoor.md)
    # ------------------------------------------------------------------
    def query_estimated(self) -> None:
        self.queries_estimated += 1

    def frontdoor_admit(self) -> None:
        self.frontdoor_admitted += 1

    def frontdoor_reject(self, tier: int) -> None:
        self.frontdoor_rejected += 1
        self.frontdoor_rejected_by_tier[tier] = (
            self.frontdoor_rejected_by_tier.get(tier, 0) + 1
        )

    def estimate_feedback(self, predicted_bytes: int, actual_bytes: int) -> None:
        self.estimate_feedback_count += 1
        if predicted_bytes == actual_bytes:
            self.estimate_exact_bytes += 1

    # ------------------------------------------------------------------
    # closed-loop overload control (docs/overload.md)
    # ------------------------------------------------------------------
    def query_shed(self, engine: str = "", reason: str = "") -> None:
        self.queries_shed += 1
        if engine:
            self.queries_shed_by_engine[engine] = (
                self.queries_shed_by_engine.get(engine, 0) + 1
            )
        if reason:
            self.queries_shed_by_reason[reason] = (
                self.queries_shed_by_reason.get(reason, 0) + 1
            )

    def tier_shed(self, tier: int) -> None:
        self.queries_shed_by_tier[tier] = (
            self.queries_shed_by_tier.get(tier, 0) + 1
        )

    def query_degraded(self, query_id: int) -> None:
        """The query needed fault recovery (resend / re-home / orphan serve)."""
        rec = self.queries.get(query_id)
        if rec is not None:
            rec.degraded = True

    def degraded_count(self) -> int:
        return sum(
            1
            for rec in self.queries.values()
            if rec.degraded and rec.finished_at is not None and not rec.failed
        )

    def unavailable_count(self) -> int:
        """Queries that failed with the DATA_UNAVAILABLE outcome."""
        return sum(
            1
            for rec in self.queries.values()
            if rec.failed and rec.error == "DATA_UNAVAILABLE"
        )

    # ------------------------------------------------------------------
    # BAT lifecycle
    # ------------------------------------------------------------------
    def bat_stats(self, bat_id: int) -> BatStats:
        stats = self.bats.get(bat_id)
        if stats is None:
            stats = BatStats(bat_id=bat_id)
            self.bats[bat_id] = stats
        return stats

    def tag_bat(self, bat_id: int, tag: str) -> None:
        """Attach a workload tag (e.g. ``dh2``) for per-set ring-load series."""
        self._bat_tags[bat_id] = tag
        self.ring_bytes_by_tag.setdefault(tag, StepSeries())

    def bat_loaded(self, t: float, bat_id: int, size: int) -> None:
        self.bat_stats(bat_id).loads += 1
        recovering_since = self._recovering_bats.pop(bat_id, None)
        if recovering_since is not None:
            self.recovery_latencies.append(t - recovering_since)
        self.ring_bytes.add(t, size)
        self.ring_bats.add(t, 1)
        tag = self._bat_tags.get(bat_id)
        if tag is not None:
            self.ring_bytes_by_tag[tag].add(t, size)

    def bat_unloaded(self, t: float, bat_id: int, size: int) -> None:
        self.bat_stats(bat_id).unloads += 1
        self.ring_bytes.add(t, -size)
        self.ring_bats.add(t, -1)
        tag = self._bat_tags.get(bat_id)
        if tag is not None:
            self.ring_bytes_by_tag[tag].add(t, -size)

    def bat_touched(self, t: float, bat_id: int) -> None:
        self.bat_stats(bat_id).touches += 1

    def bat_pinned(self, t: float, bat_id: int, count: int = 1) -> None:
        self.bat_stats(bat_id).pins += count

    def bat_cycle(self, t: float, bat_id: int, cycles: int) -> None:
        stats = self.bat_stats(bat_id)
        stats.max_cycles = max(stats.max_cycles, cycles)

    def bat_dropped(self, t: float, bat_id: int, size: int, by_loss: bool) -> None:
        self.bat_stats(bat_id).drops += 1
        if by_loss:
            self.loss_drops += 1
        else:
            self.droptail_drops += 1
        # a dropped BAT leaves the ring without an unload event
        self.ring_bytes.add(t, -size)
        self.ring_bats.add(t, -1)
        tag = self._bat_tags.get(bat_id)
        if tag is not None:
            self.ring_bytes_by_tag[tag].add(t, -size)

    def request_created(self, t: float, bat_id: int) -> None:
        self.bat_stats(bat_id).requests += 1
        self.requests_sent += 1

    # ------------------------------------------------------------------
    # fault-injection hooks (docs/faults.md)
    # ------------------------------------------------------------------
    def bat_purged(self, t: float, bat_id: int, size: int) -> None:
        """A BAT message was lost to a node crash (purged transmit queue)."""
        self.crash_drops += 1
        self.ring_bytes.add(t, -size)
        self.ring_bats.add(t, -1)
        tag = self._bat_tags.get(bat_id)
        if tag is not None:
            self.ring_bytes_by_tag[tag].add(t, -size)

    def bat_rehomed(self, t: float, bat_id: int) -> None:
        """Ownership of ``bat_id`` moved off a crashed node."""
        self.bats_rehomed += 1
        self._recovering_bats.setdefault(bat_id, t)

    def bat_adopted(self, t: float, bat_id: int) -> None:
        """A circulating copy of a re-homed BAT was claimed by its new owner."""
        self.bats_adopted += 1
        # the copy never left the ring: recovery was instantaneous
        recovering_since = self._recovering_bats.pop(bat_id, None)
        if recovering_since is not None:
            self.recovery_latencies.append(t - recovering_since)

    def orphan_retired(self, t: float, bat_id: int, size: int) -> None:
        """A dead owner's copy was pulled out of circulation."""
        self.orphans_retired += 1
        self.ring_bytes.add(t, -size)
        self.ring_bats.add(t, -1)
        tag = self._bat_tags.get(bat_id)
        if tag is not None:
            self.ring_bytes_by_tag[tag].add(t, -size)

    def request_unavailable(self, t: float, bat_id: int) -> None:
        self.requests_unavailable += 1

    def ring_repaired(self, t: float, node: int, latency: float) -> None:
        """A detector-driven repair completed ``latency`` s after the failure."""
        self.ring_repairs += 1
        self.repair_latencies.append(latency)

    def node_down(self, t: float, node: int) -> None:
        self.downtime.setdefault(node, []).append([t, None])

    def node_up(self, t: float, node: int, owned_bats: Optional[List[int]] = None) -> None:
        intervals = self.downtime.get(node)
        if intervals and intervals[-1][1] is None:
            intervals[-1][1] = t
        for bat_id in owned_bats or []:
            self._recovering_bats.setdefault(bat_id, t)

    def node_downtime(self, node: int, until: float) -> float:
        """Total seconds ``node`` spent down, open intervals clipped at ``until``."""
        total = 0.0
        for down_at, up_at in self.downtime.get(node, []):
            total += (up_at if up_at is not None else until) - down_at
        return total

    def total_downtime(self, until: float) -> float:
        return sum(self.node_downtime(node, until) for node in sorted(self.downtime))

    def request_served(self, t: float, bat_id: int, latency: float) -> None:
        stats = self.bat_stats(bat_id)
        stats.max_request_latency = max(stats.max_request_latency, latency)

    # ------------------------------------------------------------------
    # derived artefacts
    # ------------------------------------------------------------------
    def lifetimes(self, tag: Optional[str] = None) -> List[float]:
        return [
            rec.lifetime
            for rec in self.queries.values()
            if rec.lifetime is not None
            and not rec.failed
            and (tag is None or rec.tag == tag)
        ]

    def lifetime_histogram(self, bin_width: float = 5.0, tag: Optional[str] = None) -> Histogram:
        hist = Histogram(bin_width=bin_width)
        hist.extend(self.lifetimes(tag))
        return hist

    def finished_count(self, tag: Optional[str] = None) -> int:
        return sum(
            1
            for rec in self.queries.values()
            if rec.finished_at is not None
            and not rec.failed
            and (tag is None or rec.tag == tag)
        )

    def registered_times(self, tag: Optional[str] = None) -> List[float]:
        return [
            rec.registered_at
            for rec in self.queries.values()
            if tag is None or rec.tag == tag
        ]

    def finished_times(self, tag: Optional[str] = None) -> List[float]:
        return [
            rec.finished_at
            for rec in self.queries.values()
            if rec.finished_at is not None
            and not rec.failed
            and (tag is None or rec.tag == tag)
        ]

    def throughput_series(
        self, end: float, step: float = 1.0, tag: Optional[str] = None
    ) -> Tuple[List[float], List[int]]:
        """Cumulative executed queries over time (Figure 6a / 8b)."""
        return binned_cumulative(self.finished_times(tag), end, step)

    def registered_series(
        self, end: float, step: float = 1.0, tag: Optional[str] = None
    ) -> Tuple[List[float], List[int]]:
        return binned_cumulative(self.registered_times(tag), end, step)

    def all_finished(self) -> bool:
        return all(rec.finished_at is not None for rec in self.queries.values())
