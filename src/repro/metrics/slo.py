"""Latency SLOs over the typed event stream (docs/workloads.md).

The scenario suite reports what production systems report: latency
percentiles per run and per tenant, failure rates, and a pass/fail
verdict against declared targets.  Everything here is a pure function
of the bus events -- the :class:`SloCollector` subscribes to the query
lifecycle (``QueryRegistered`` / ``QueryFinished`` / ``QueryFailed`` /
``QueryShed``) and never reaches into runtime state, so a verdict can
be recomputed from a JSONL trace of the same run.

Percentiles are *exact* (sorted-sample order statistics with the
nearest-rank rule), not binned: the p999 of a failover tail is the
whole point of the gateway-chaos scenario, and a histogram bin edge
would blur exactly the number we gate on.  The streaming
:class:`~repro.metrics.histogram.Histogram` keeps its role for the
figure reproductions; the property tests in
``tests/test_metrics_histogram.py`` pin how close its binned quantiles
stay to the exact ones computed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Callable, Dict, List, Optional, Tuple

from repro.events import types as ev
from repro.events.bus import Bus

__all__ = [
    "PERCENTILES",
    "EngineSloTarget",
    "SloCollector",
    "SloTarget",
    "exact_quantile",
    "jain_fairness",
    "latency_percentiles",
    "validate_verdict",
]

# the percentile set every scenario reports, in report order
PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p99", 0.99),
    ("p999", 0.999),
)


def exact_quantile(samples: List[float], q: float) -> float:
    """Nearest-rank quantile of ``samples`` (which must be sorted).

    ``q=0`` is the minimum, ``q=1`` the maximum; an empty sample list
    yields 0.0 (the same convention as ``Histogram.quantile``).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if not samples:
        return 0.0
    if q == 0.0:
        return samples[0]
    return samples[min(len(samples) - 1, ceil(q * len(samples)) - 1)]


def latency_percentiles(samples: List[float]) -> Dict[str, float]:
    """The standard p50/p99/p999 dict over an unsorted sample list."""
    ordered = sorted(samples)
    return {name: exact_quantile(ordered, q) for name, q in PERCENTILES}


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index: 1.0 when every tenant fares the same.

    ``(sum x)^2 / (n * sum x^2)``, in (0, 1]; degenerate inputs (no
    tenants, all-zero) report perfect fairness rather than dividing by
    zero.
    """
    if not values:
        return 1.0
    square_sum = sum(x * x for x in values)
    if square_sum == 0.0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


@dataclass(frozen=True)
class SloTarget:
    """Declared latency/availability objectives for one scenario."""

    p50: float
    p99: float
    p999: float
    max_failure_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.p50 <= self.p99 <= self.p999:
            raise ValueError("targets must satisfy 0 < p50 <= p99 <= p999")
        if not 0.0 <= self.max_failure_rate <= 1.0:
            raise ValueError("max_failure_rate must be in [0, 1]")

    def as_dict(self) -> Dict[str, float]:
        return {
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "max_failure_rate": self.max_failure_rate,
        }


@dataclass(frozen=True)
class EngineSloTarget:
    """Declared objectives for one engine class in a mixed workload.

    Different engines gate on different numbers: a KV tenant cares
    about tail latency (``p99``), a streaming aggregate about sustained
    ``min_throughput`` (successful queries per simulated second).  Any
    field left ``None`` is simply not gated, so one schema covers all
    three engine classes without dummy targets.
    """

    p99: Optional[float] = None
    min_throughput: Optional[float] = None
    max_failure_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.p99 is not None and self.p99 <= 0:
            raise ValueError("p99 target must be positive")
        if self.min_throughput is not None and self.min_throughput <= 0:
            raise ValueError("min_throughput target must be positive")
        if not 0.0 <= self.max_failure_rate <= 1.0:
            raise ValueError("max_failure_rate must be in [0, 1]")

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "p99": self.p99,
            "min_throughput": self.min_throughput,
            "max_failure_rate": self.max_failure_rate,
        }


@dataclass
class _QueryTrack:
    """First registration and terminal outcome of one logical query."""

    registered_at: float
    tag: str
    finished_at: Optional[float] = None
    failed_at: Optional[float] = None
    shed: bool = False


class SloCollector:
    """Per-query end-to-end latency accounting from bus events.

    Retries re-register the *same* ``query_id``; the collector keeps the
    first registration time so the recorded latency is what the user
    saw -- submission to final success -- not the latency of the lucky
    last attempt.  A query counts as failed only if it never finished
    (a ``QueryFailed`` followed by a retried ``QueryFinished`` is a
    success with an honest, long latency).
    """

    def __init__(self) -> None:
        self._queries: Dict[int, _QueryTrack] = {}
        self._detach: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # bus wiring
    # ------------------------------------------------------------------
    def attach(self, bus: Bus) -> "SloCollector":
        """Subscribe to the query lifecycle on ``bus`` (chainable).

        A federation publishes lifecycle events on every ring's bus;
        attach the same collector to each of them.
        """
        pairs = (
            (ev.QueryRegistered, self._on_registered),
            (ev.QueryFinished, self._on_finished),
            (ev.QueryFailed, self._on_failed),
            (ev.QueryShed, self._on_shed),
        )
        for event_type, handler in pairs:
            bus.subscribe(event_type, handler)
            self._detach.append(
                lambda _b=bus, _t=event_type, _h=handler: _b.unsubscribe(_t, _h)
            )
        return self

    def detach(self) -> None:
        for fn in self._detach:
            fn()
        self._detach.clear()

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_registered(self, e: ev.QueryRegistered) -> None:
        track = self._queries.get(e.query_id)
        if track is None:
            self._queries[e.query_id] = _QueryTrack(e.t, e.tag)

    def _on_finished(self, e: ev.QueryFinished) -> None:
        track = self._queries.get(e.query_id)
        if track is not None and track.finished_at is None:
            track.finished_at = e.t

    def _on_failed(self, e: ev.QueryFailed) -> None:
        track = self._queries.get(e.query_id)
        if track is not None:
            track.failed_at = e.t

    def _on_shed(self, e: ev.QueryShed) -> None:
        track = self._queries.get(e.query_id)
        if track is None:
            self._queries[e.query_id] = _QueryTrack(e.t, "", shed=True)
        else:
            track.shed = True

    # ------------------------------------------------------------------
    # derived stats
    # ------------------------------------------------------------------
    @property
    def query_count(self) -> int:
        return len(self._queries)

    def latencies(self, tag: Optional[str] = None) -> List[float]:
        """End-to-end latencies of successful queries, submission order agnostic."""
        return [
            track.finished_at - track.registered_at
            for track in self._queries.values()
            if track.finished_at is not None
            and (tag is None or track.tag == tag)
        ]

    def failed_count(self, tag: Optional[str] = None) -> int:
        return sum(
            1
            for track in self._queries.values()
            if track.finished_at is None
            and (tag is None or track.tag == tag)
        )

    def shed_count(self) -> int:
        return sum(1 for track in self._queries.values() if track.shed)

    def tags(self) -> List[str]:
        return sorted({t.tag for t in self._queries.values() if t.tag})

    # ------------------------------------------------------------------
    # fairness + verdicts
    # ------------------------------------------------------------------
    def tenant_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tag latency percentiles, counts and mean (tenant accounting)."""
        out: Dict[str, Dict[str, float]] = {}
        for tag in self.tags():
            samples = self.latencies(tag)
            stats = latency_percentiles(samples)
            stats["queries"] = float(len(samples) + self.failed_count(tag))
            stats["failed"] = float(self.failed_count(tag))
            stats["mean"] = sum(samples) / len(samples) if samples else 0.0
            out[tag] = stats
        return out

    def fairness(self) -> Dict[str, float]:
        """Jain indices over per-tenant mean latency and p99."""
        per_tenant = self.tenant_stats()
        return {
            "tenants": float(len(per_tenant)),
            "mean_latency_jain": round(
                jain_fairness([s["mean"] for s in per_tenant.values()]), 6
            ),
            "p99_jain": round(
                jain_fairness([s["p99"] for s in per_tenant.values()]), 6
            ),
        }

    def verdict(self, scenario: str, seed: int, target: SloTarget) -> Dict:
        """The serialisable SLO verdict object for one scenario run."""
        samples = self.latencies()
        percentiles = {
            name: round(value, 6)
            for name, value in latency_percentiles(samples).items()
        }
        failed = self.failed_count()
        total = self.query_count
        failure_rate = failed / total if total else 0.0
        passed = {
            name: percentiles[name] <= getattr(target, name)
            for name, _q in PERCENTILES
        }
        passed["failure_rate"] = failure_rate <= target.max_failure_rate
        verdict = {
            "scenario": scenario,
            "seed": seed,
            "queries": total,
            "succeeded": len(samples),
            "failed": failed,
            "shed": self.shed_count(),
            "failure_rate": round(failure_rate, 6),
            "latency": percentiles,
            "target": target.as_dict(),
            "passed": passed,
            "ok": all(passed.values()),
        }
        tenants = self.tenant_stats()
        if tenants:
            verdict["tenants"] = {
                tag: {k: round(v, 6) for k, v in stats.items()}
                for tag, stats in tenants.items()
            }
            verdict["fairness"] = self.fairness()
        return verdict

    def engine_verdicts(
        self, targets: Dict[str, EngineSloTarget], duration: float
    ) -> Dict[str, Dict]:
        """Per-engine-class verdicts for a mixed-engine run.

        With ``RingDatabase(lifecycle_events=True)`` each query's
        registration tag *is* its engine class (``mal`` / ``kv`` /
        ``stream``), so this reuses the tenant machinery: for every
        engine in ``targets`` it gates the declared objectives --
        ``p99`` for point lookups, ``min_throughput`` (successes per
        simulated second over ``duration``) for streaming folds -- and
        returns a dict ready to embed as ``verdict["engine_classes"]``
        (``validate_verdict`` checks it when present).
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        out: Dict[str, Dict] = {}
        for engine, target in sorted(targets.items()):
            samples = sorted(self.latencies(engine))
            failed = self.failed_count(engine)
            total = len(samples) + failed
            p99 = exact_quantile(samples, 0.99)
            throughput = len(samples) / duration
            failure_rate = failed / total if total else 0.0
            passed: Dict[str, bool] = {}
            if target.p99 is not None:
                passed["p99"] = p99 <= target.p99
            if target.min_throughput is not None:
                passed["throughput"] = throughput >= target.min_throughput
            passed["failure_rate"] = failure_rate <= target.max_failure_rate
            out[engine] = {
                "queries": total,
                "succeeded": len(samples),
                "failed": failed,
                "p99": round(p99, 6),
                "throughput": round(throughput, 6),
                "failure_rate": round(failure_rate, 6),
                "target": target.as_dict(),
                "passed": passed,
                "ok": all(passed.values()),
            }
        return out


# ----------------------------------------------------------------------
# verdict schema
# ----------------------------------------------------------------------
_REQUIRED_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("scenario", str),
    ("seed", int),
    ("queries", int),
    ("succeeded", int),
    ("failed", int),
    ("shed", int),
    ("failure_rate", float),
    ("latency", dict),
    ("target", dict),
    ("passed", dict),
    ("ok", bool),
)

_PERCENTILE_KEYS = tuple(name for name, _q in PERCENTILES)


def validate_verdict(verdict: Dict) -> None:
    """Raise ``ValueError`` unless ``verdict`` matches the SLO schema.

    The scenario-smoke CI job runs every verdict through this before
    uploading ``BENCH_slo.json``; schema drift fails the build even
    when the SLO itself is met.
    """
    for name, expected in _REQUIRED_FIELDS:
        if name not in verdict:
            raise ValueError(f"verdict missing field {name!r}")
        value = verdict[name]
        if expected is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"verdict field {name!r} must be a number")
        elif not isinstance(value, expected):
            raise ValueError(
                f"verdict field {name!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    for section in ("latency", "target"):
        for key in _PERCENTILE_KEYS:
            if key not in verdict[section]:
                raise ValueError(f"verdict {section!r} missing {key!r}")
            if verdict[section][key] < 0:
                raise ValueError(f"verdict {section!r}[{key!r}] is negative")
    for key in (*_PERCENTILE_KEYS, "failure_rate"):
        if key not in verdict["passed"]:
            raise ValueError(f"verdict 'passed' missing {key!r}")
        if not isinstance(verdict["passed"][key], bool):
            raise ValueError(f"verdict 'passed'[{key!r}] must be a bool")
    if verdict["ok"] != all(verdict["passed"].values()):
        raise ValueError("verdict 'ok' contradicts its 'passed' map")
    if verdict["queries"] != verdict["succeeded"] + verdict["failed"]:
        raise ValueError("verdict counts do not add up")
    # mixed-engine scenarios attach per-engine-class verdicts (docs/qpu.md)
    for engine, section in verdict.get("engine_classes", {}).items():
        if not isinstance(section, dict):
            raise ValueError(f"engine_classes[{engine!r}] must be a dict")
        for key in ("queries", "succeeded", "failed", "target", "passed", "ok"):
            if key not in section:
                raise ValueError(f"engine_classes[{engine!r}] missing {key!r}")
        for key, value in section["passed"].items():
            if not isinstance(value, bool):
                raise ValueError(
                    f"engine_classes[{engine!r}] 'passed'[{key!r}] must be a bool"
                )
        if section["ok"] != all(section["passed"].values()):
            raise ValueError(
                f"engine_classes[{engine!r}] 'ok' contradicts its 'passed' map"
            )
        if section["queries"] != section["succeeded"] + section["failed"]:
            raise ValueError(f"engine_classes[{engine!r}] counts do not add up")
