"""Federation-level reporting (docs/multiring.md).

One text artefact per federated run: a per-ring table (fragments,
bytes, query outcomes, peak ring load) followed by the cross-ring
traffic counters -- fetches, shipped queries, migrations, split/merge
and gateway-failover activity.  Everything is read from the
federation's :meth:`summary`, which in turn is fed exclusively by the
typed events on the bus, so the report is a pure function of the event
stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.report import render_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.multiring.federation import RingFederation

__all__ = ["federation_summary", "render_federation_report"]

# counters shown in the traffic section, in display order
_TRAFFIC_KEYS = (
    "submitted",
    "completed",
    "failed",
    "queries_shipped",
    "cross_ring_requests",
    "cross_ring_transfers",
    "fetches_dispatched",
    "fetches_served",
    "fetches_absorbed",
    "fetches_failed",
    "fetch_mean_latency",
    "fetch_max_latency",
    "migrations_started",
    "fragments_migrated",
    "migrations_aborted",
    "migrations_deferred",
    "ring_splits",
    "rings_merged",
    "gateway_failures",
    "gateway_elections",
    "serves_handed_off",
    "events_processed",
)


def federation_summary(fed: "RingFederation") -> dict:
    """The federation's headline numbers (same dict the CLI prints)."""
    return fed.summary()


def render_federation_report(fed: "RingFederation") -> str:
    """The full text report: per-ring table + traffic counters."""
    summary = fed.summary()
    ring_rows = [
        [
            row["ring"],
            "yes" if row["active"] else "no",
            row["nodes"],
            row["fragments"],
            row["fragment_bytes"],
            row["queries_finished"],
            row["queries_failed"],
            row["mean_lifetime"],
            row["peak_ring_bytes"],
        ]
        for row in summary["rings"]
    ]
    table = render_table(
        headers=[
            "ring", "active", "nodes", "fragments", "bytes",
            "finished", "failed", "mean lifetime", "peak ring bytes",
        ],
        rows=ring_rows,
        title=(
            f"federation: {summary['n_rings']} rings x "
            f"{summary['nodes_per_ring']} nodes "
            f"(active: {summary['active_rings']})"
        ),
    )
    traffic = render_table(
        headers=["counter", "value"],
        rows=[[k, summary[k]] for k in _TRAFFIC_KEYS if k in summary],
        title="cross-ring traffic",
    )
    return table + "\n\n" + traffic + "\n"
