"""Multi-seed replication statistics.

Simulation results depend on the workload seed; the paper reports single
runs, but a careful reproduction should show its *shape* claims hold
across seeds.  :func:`replicate` runs an experiment function under
several seeds and summarises each scalar metric as mean, standard
deviation and a Student-t confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

__all__ = ["Summary", "replicate", "summarise"]

# two-sided 95% Student-t critical values by degrees of freedom
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    15: 2.131, 20: 2.086, 30: 2.042,
}


def _t_value(df: int) -> float:
    if df <= 0:
        return float("inf")
    if df in _T95:
        return _T95[df]
    candidates = [k for k in _T95 if k <= df]
    return _T95[max(candidates)] if candidates else 1.96


@dataclass(frozen=True)
class Summary:
    """Mean, spread and 95% confidence half-width of one metric."""

    metric: str
    n: int
    mean: float
    std: float
    ci95: float
    minimum: float
    maximum: float

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def overlaps(self, other: "Summary") -> bool:
        """True when the two 95% intervals intersect."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return (
            f"{self.metric}: {self.mean:.4g} ± {self.ci95:.2g} "
            f"(n={self.n}, range {self.minimum:.4g}..{self.maximum:.4g})"
        )


def summarise(metric: str, samples: Sequence[float]) -> Summary:
    """Summarise raw samples of one metric."""
    if not samples:
        raise ValueError("no samples")
    n = len(samples)
    mean = sum(samples) / n
    if n > 1:
        var = sum((x - mean) ** 2 for x in samples) / (n - 1)
        std = math.sqrt(var)
        ci95 = _t_value(n - 1) * std / math.sqrt(n)
    else:
        std = 0.0
        ci95 = 0.0
    return Summary(
        metric=metric,
        n=n,
        mean=mean,
        std=std,
        ci95=ci95,
        minimum=min(samples),
        maximum=max(samples),
    )


def replicate(
    experiment: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
) -> Dict[str, Summary]:
    """Run ``experiment(seed)`` per seed; summarise each returned metric.

    Every run must return the same metric keys.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    collected: Dict[str, List[float]] = {}
    keys = None
    for seed in seeds:
        metrics = experiment(seed)
        if keys is None:
            keys = set(metrics)
            for key in keys:
                collected[key] = []
        elif set(metrics) != keys:
            raise ValueError(
                f"inconsistent metrics: {sorted(keys)} vs {sorted(metrics)}"
            )
        for key, value in metrics.items():
            collected[key].append(float(value))
    return {key: summarise(key, values) for key, values in collected.items()}
