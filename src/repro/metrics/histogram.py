"""Fixed-width histograms for query life-time distributions (Figure 6b)."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["Histogram"]


class Histogram:
    """A streaming fixed-bin-width histogram over non-negative samples."""

    def __init__(self, bin_width: float = 5.0):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self._bins: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def add(self, sample: float) -> None:
        if sample < 0:
            raise ValueError(f"negative sample: {sample}")
        idx = int(sample // self.bin_width)
        self._bins[idx] = self._bins.get(idx, 0) + 1
        self.count += 1
        self.total += sample
        self.min = sample if self.min is None else min(self.min, sample)
        self.max = sample if self.max is None else max(self.max, sample)

    def extend(self, samples: Sequence[float]) -> None:
        for s in samples:
            self.add(s)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bins(self) -> List[Tuple[float, float, int]]:
        """Sorted ``(low, high, count)`` triples for non-empty bins."""
        return [
            (i * self.bin_width, (i + 1) * self.bin_width, self._bins[i])
            for i in sorted(self._bins)
        ]

    def dense_counts(self) -> List[int]:
        """Counts for every bin from 0 up to the highest non-empty one."""
        if not self._bins:
            return []
        top = max(self._bins)
        return [self._bins.get(i, 0) for i in range(top + 1)]

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly inside bins ending at or below ``threshold``."""
        if self.count == 0:
            return 0.0
        full_bins = int(math.floor(threshold / self.bin_width))
        below = sum(c for i, c in self._bins.items() if i < full_bins)
        return below / self.count

    def quantile(self, q: float) -> float:
        """Approximate quantile (upper edge of the bin holding it)."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i in sorted(self._bins):
            seen += self._bins[i]
            if seen >= target:
                return (i + 1) * self.bin_width
        return (max(self._bins) + 1) * self.bin_width
