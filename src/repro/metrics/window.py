"""Streaming SLO health over a sliding time window (docs/overload.md).

The offline :mod:`repro.metrics.slo` collector computes percentiles over
a *whole run* -- fine for verdicts, useless for control.  The overload
controller needs the p99 of the last couple of simulated seconds, and it
needs it cheaply at every control tick.  :class:`SampleWindow` keeps the
(timestamp, value) pairs of a bounded horizon in a deque and answers
nearest-rank quantiles over the survivors; :class:`WindowedHealth`
composes one latency window and one shed window per engine class plus a
combined pair, giving the controller rolling p99 / throughput /
shed-rate signals with the same quantile convention the verdicts use
(:func:`repro.metrics.slo.exact_quantile`).

Eviction is explicit (``evict(now)``) so a burst of events between two
control ticks costs O(1) appends; the sort for a quantile touches only
the samples still inside the horizon.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.metrics.slo import exact_quantile

__all__ = ["SampleWindow", "WindowedHealth"]


class SampleWindow:
    """Timestamped samples of the last ``horizon`` simulated seconds."""

    def __init__(self, horizon: float) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        self._samples: Deque[Tuple[float, float]] = deque()

    def add(self, t: float, value: float) -> None:
        self._samples.append((t, value))

    def evict(self, now: float) -> None:
        """Drop samples older than ``now - horizon``."""
        cutoff = now - self.horizon
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def __len__(self) -> int:
        return len(self._samples)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the surviving sample values."""
        return exact_quantile(sorted(v for _, v in self._samples), q)

    def fresh_quantile(self, q: float, now: float) -> float:
        """Quantile over samples whose *start* lies inside the horizon.

        Latency samples are stamped at completion; a straggler that
        queued through an entire overload episode lands in the window
        long after conditions improved and poisons :meth:`quantile` for
        a full horizon.  Treating ``t - value`` as the sample's start
        time and keeping only starts newer than ``now - horizon``
        yields a quantile of the *current* regime -- the right signal
        for hysteretic recovery.
        """
        cutoff = now - self.horizon
        return exact_quantile(
            sorted(v for t, v in self._samples if t - v >= cutoff), q
        )

    def fresh_count(self, now: float) -> int:
        cutoff = now - self.horizon
        return sum(1 for t, v in self._samples if t - v >= cutoff)

    def rate(self, now: float) -> float:
        """Samples per second over the (possibly short) elapsed window."""
        span = min(self.horizon, now) if now > 0 else self.horizon
        if span <= 0:
            return 0.0
        return len(self._samples) / span


class WindowedHealth:
    """Rolling latency/shed health, combined and per engine class."""

    def __init__(self, horizon: float) -> None:
        self.horizon = horizon
        self._latency = SampleWindow(horizon)
        self._shed = SampleWindow(horizon)
        self._latency_by_class: Dict[str, SampleWindow] = {}
        self._shed_by_class: Dict[str, SampleWindow] = {}

    def _class_window(self, table: Dict[str, SampleWindow], cls: str) -> SampleWindow:
        win = table.get(cls)
        if win is None:
            win = table[cls] = SampleWindow(self.horizon)
        return win

    def note_finish(self, t: float, latency: float, cls: str = "") -> None:
        self._latency.add(t, latency)
        if cls:
            self._class_window(self._latency_by_class, cls).add(t, latency)

    def note_shed(self, t: float, cls: str = "") -> None:
        self._shed.add(t, 1.0)
        if cls:
            self._class_window(self._shed_by_class, cls).add(t, 1.0)

    def evict(self, now: float) -> None:
        self._latency.evict(now)
        self._shed.evict(now)
        for win in self._latency_by_class.values():
            win.evict(now)
        for win in self._shed_by_class.values():
            win.evict(now)

    def _pick(
        self, combined: SampleWindow, table: Dict[str, SampleWindow],
        cls: Optional[str],
    ) -> Optional[SampleWindow]:
        if cls is None:
            return combined
        return table.get(cls)

    def sample_count(self, cls: Optional[str] = None) -> int:
        win = self._pick(self._latency, self._latency_by_class, cls)
        return len(win) if win is not None else 0

    def p99(self, cls: Optional[str] = None) -> float:
        win = self._pick(self._latency, self._latency_by_class, cls)
        return win.quantile(0.99) if win is not None else 0.0

    def fresh_p99(self, now: float, cls: Optional[str] = None) -> float:
        """p99 over completions that also *started* inside the horizon."""
        win = self._pick(self._latency, self._latency_by_class, cls)
        return win.fresh_quantile(0.99, now) if win is not None else 0.0

    def fresh_count(self, now: float, cls: Optional[str] = None) -> int:
        win = self._pick(self._latency, self._latency_by_class, cls)
        return win.fresh_count(now) if win is not None else 0

    def throughput(self, now: float, cls: Optional[str] = None) -> float:
        win = self._pick(self._latency, self._latency_by_class, cls)
        return win.rate(now) if win is not None else 0.0

    def shed_rate(self, now: float, cls: Optional[str] = None) -> float:
        win = self._pick(self._shed, self._shed_by_class, cls)
        return win.rate(now) if win is not None else 0.0

    def classes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._latency_by_class))
