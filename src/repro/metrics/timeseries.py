"""Step-function time series and binning helpers.

The ring-load plots of Figures 7 and 8a are step functions: the load
changes at discrete load/unload instants.  A :class:`StepSeries` records
``(time, value)`` change points and can be resampled onto a regular grid
for reporting.  ``binned_cumulative`` turns raw event timestamps into
the cumulative counts plotted in Figures 6a and 8b.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence, Tuple

__all__ = ["StepSeries", "binned_cumulative"]


class StepSeries:
    """A piecewise-constant series recorded as change points."""

    def __init__(self, initial: float = 0.0):
        self._times: List[float] = [0.0]
        self._values: List[float] = [float(initial)]

    def record(self, time: float, value: float) -> None:
        """Record that the series took ``value`` from ``time`` onwards."""
        if time < self._times[-1]:
            raise ValueError(
                f"time went backwards: {time} < {self._times[-1]}"
            )
        if time == self._times[-1]:
            self._values[-1] = value
        else:
            self._times.append(time)
            self._values.append(value)

    def add(self, time: float, delta: float) -> float:
        """Record a relative change; returns the new value."""
        value = self._values[-1] + delta
        self.record(time, value)
        return value

    @property
    def current(self) -> float:
        return self._values[-1]

    def value_at(self, time: float) -> float:
        """Series value at ``time`` (values hold until the next change)."""
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return self._values[0]
        return self._values[idx]

    def sample(self, times: Iterable[float]) -> List[float]:
        return [self.value_at(t) for t in times]

    def grid(self, end: float, step: float) -> Tuple[List[float], List[float]]:
        """Sample onto a regular grid ``0, step, 2*step, ... <= end``."""
        if step <= 0:
            raise ValueError("step must be positive")
        times: List[float] = []
        t = 0.0
        while t <= end + 1e-12:
            times.append(t)
            t += step
        return times, self.sample(times)

    def maximum(self) -> float:
        return max(self._values)

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def __len__(self) -> int:
        return len(self._times)


def binned_cumulative(
    timestamps: Sequence[float], end: float, step: float
) -> Tuple[List[float], List[int]]:
    """Cumulative event count sampled on a regular grid.

    This is the presentation of Figure 6(a): "the cumulative number of
    queries finished over time".
    """
    if step <= 0:
        raise ValueError("step must be positive")
    stamps = sorted(timestamps)
    times: List[float] = []
    counts: List[int] = []
    t = 0.0
    while t <= end + 1e-12:
        times.append(t)
        counts.append(bisect.bisect_right(stamps, t))
        t += step
    return times, counts
