"""Ring-level invariants the chaos harness asserts at every fault point.

Each check returns a list of human-readable violation strings (empty
means the invariant holds).  They are designed to be evaluated *between*
simulation events -- message handling is synchronous, so at that point
every circulating BAT copy is either queued in a transmit queue or on
the wire, which makes exact byte conservation checkable.

:class:`InvariantMonitor` packages the checks as an event-bus subscriber:
it audits the ring at every fault event (crash, rejoin, link
degradation) in *any* simulation that publishes them -- not only chaos
harness runs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.messages import BATMessage
from repro.core.ring import DataCyclotron
from repro.events import types as ev
from repro.events.bus import Bus

__all__ = ["InvariantMonitor", "check_invariants", "check_terminal"]


def _circulating_bats(dc: DataCyclotron):
    """Every BAT message in any data channel (queued or on the wire)."""
    for node_id in range(dc.config.n_nodes):
        channel = dc.ring.data_channel(node_id)
        for message, _size in channel.in_channel_items():
            if isinstance(message, BATMessage):
                yield node_id, message


def check_conservation(dc: DataCyclotron) -> List[str]:
    """Ring-load accounting matches the bytes physically in the ring."""
    violations = []
    actual_bytes = sum(msg.size for _, msg in _circulating_bats(dc))
    actual_count = sum(1 for _ in _circulating_bats(dc))
    recorded_bytes = dc.metrics.ring_bytes.current
    recorded_count = dc.metrics.ring_bats.current
    if recorded_bytes != actual_bytes:
        violations.append(
            f"ring byte conservation: metrics say {recorded_bytes}, "
            f"channels hold {actual_bytes}"
        )
    if recorded_count != actual_count:
        violations.append(
            f"ring BAT-count conservation: metrics say {recorded_count}, "
            f"channels hold {actual_count}"
        )
    return violations


def check_no_orphans(dc: DataCyclotron) -> List[str]:
    """Every circulating copy has a live owner, or a dead owner that all
    live nodes know about (so the copy is retired/adopted on its next
    hop).  Nothing may cycle forever without an owner.

    A *silent* failure (``fail_node``) is exempt while unrepaired: by
    design nobody has been told yet, and the un-rewired ring funnels the
    dead owner's copies into its purged queues rather than cycling them.
    """
    violations = []
    live = [n for n in dc.nodes if not n.crashed]
    unrepaired = dc.unrepaired_failures
    for node_id, msg in _circulating_bats(dc):
        if dc.ring.is_alive(msg.owner) or msg.owner in unrepaired:
            continue
        unaware = [n.node_id for n in live if msg.owner not in n.dead_peers]
        if unaware:
            violations.append(
                f"orphaned BAT {msg.bat_id} (owner {msg.owner} dead) in "
                f"channel of node {node_id}; nodes {unaware} unaware"
            )
    return violations


def check_timer_hygiene(dc: DataCyclotron) -> List[str]:
    """Resend timers exist only on live nodes and only for open requests."""
    violations = []
    for node in dc.nodes:
        if node.crashed:
            if node._resend_timers:
                violations.append(
                    f"crashed node {node.node_id} still holds resend timers "
                    f"for {sorted(node._resend_timers)}"
                )
            continue
        for bat_id, event in node._resend_timers.items():
            if event.cancelled:
                violations.append(
                    f"node {node.node_id} holds a cancelled timer for BAT {bat_id}"
                )
            if not node.s2.has(bat_id):
                violations.append(
                    f"node {node.node_id} holds a resend timer for BAT "
                    f"{bat_id} with no outstanding request"
                )
    return violations


def check_ownership(dc: DataCyclotron) -> List[str]:
    """Each BAT has exactly one owner and the catalogs agree with the
    facade's owner map."""
    violations = []
    for bat_id in dc.bat_ids:
        owner = dc.bat_owner(bat_id)
        holders = [
            node.node_id
            for node in dc.nodes
            if node.s1.maybe(bat_id) is not None and not node.s1.get(bat_id).deleted
        ]
        if holders != [owner]:
            violations.append(
                f"BAT {bat_id}: owner map says {owner}, catalogs say {holders}"
            )
    return violations


def check_pin_accounting(dc: DataCyclotron) -> List[str]:
    """Pinned-byte counters agree with the cache contents on live nodes."""
    violations = []
    for node in dc.nodes:
        if node.crashed:
            if node.cache or node.pinned_bytes:
                violations.append(
                    f"crashed node {node.node_id} retains pinned memory"
                )
            continue
        cached = sum(c.size for c in node.cache.values())
        if cached != node.pinned_bytes:
            violations.append(
                f"node {node.node_id}: pinned_bytes={node.pinned_bytes} but "
                f"cache holds {cached}"
            )
        violations.extend(
            f"node {node.node_id}: BAT {bat_id} refcount {entry.refcount} < 0"
            for bat_id, entry in node.cache.items() if entry.refcount < 0
        )
    return violations


def check_invariants(dc: DataCyclotron) -> List[str]:
    """All fault-point invariants; empty list = the ring is consistent."""
    return (
        check_conservation(dc)
        + check_no_orphans(dc)
        + check_timer_hygiene(dc)
        + check_ownership(dc)
        + check_pin_accounting(dc)
    )


class InvariantMonitor:
    """Audits the ring after every fault, driven by the event bus.

    Subscribes to :class:`~repro.events.types.NodeCrashed`,
    :class:`~repro.events.types.NodeRejoined` and
    :class:`~repro.events.types.LinkDegraded`.  The facade publishes each
    of these at the *end* of the corresponding fault action, after the
    topology repair and re-homing completed, so the invariants are
    checked at exactly the consistency point the chaos harness used to
    probe via its injector callback -- but the monitor works in any
    simulation, with or without a :class:`FaultInjector`.
    """

    _KINDS = {
        ev.NodeCrashed: "crash",
        ev.NodeFailed: "fail",
        ev.RingRepaired: "repair",
        ev.NodeRejoined: "rejoin",
        ev.LinkDegraded: "degrade",
    }

    def __init__(self, dc: DataCyclotron, bus: Optional[Bus] = None):
        self.dc = dc
        self.checks = 0
        self.log: List[str] = []
        self.violations: List[str] = []
        self._bus = bus if bus is not None else dc.bus
        self._bus.subscribe_many(self._KINDS, self._on_fault)

    def detach(self) -> None:
        """Stop auditing (idempotent)."""
        for event_type in self._KINDS:
            self._bus.unsubscribe(event_type, self._on_fault)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _on_fault(self, event) -> None:
        kind = self._KINDS[type(event)]
        self.checks += 1
        found = check_invariants(self.dc)
        live = len(self.dc.live_node_ids)
        self.log.append(
            f"t={self.dc.now:.3f} {kind} node={event.node} live={live} "
            f"violations={len(found)}"
        )
        self.violations.extend(f"after {kind}@{event.t:.3f}: {v}" for v in found)


def check_terminal(dc: DataCyclotron) -> List[str]:
    """End-of-run obligations: every query terminated (finished, failed,
    or DATA_UNAVAILABLE -- never a hang) and no dead-owner copy is still
    circulating."""
    violations = []
    unterminated = [
        rec.query_id
        for rec in dc.metrics.queries.values()
        if rec.finished_at is None
    ]
    if unterminated:
        violations.append(f"queries never terminated: {sorted(unterminated)[:10]}")
    stale = sorted(
        {msg.bat_id for _, msg in _circulating_bats(dc) if not dc.ring.is_alive(msg.owner)}
    )
    if stale:
        violations.append(f"dead-owner BATs still circulating: {stale}")
    return violations + check_invariants(dc)
