"""The deterministic chaos harness.

Builds a ring + uniform workload + fault scenario from a single seed,
runs it to completion, checks the ring invariants immediately after
every injected fault, and renders a canonical text report.  Two
harness runs with identical parameters produce byte-identical reports
-- the determinism regression test relies on it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import MB, DataCyclotronConfig
from repro.core.ring import DataCyclotron
from repro.events.tracer import Tracer
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantMonitor, check_terminal
from repro.faults.scenario import ChaosScenario
from repro.workloads.base import UniformDataset, populate_ring
from repro.workloads.uniform import UniformWorkload

__all__ = ["ChaosHarness", "ChaosResult"]


@dataclass
class ChaosResult:
    """Everything one chaos run produced."""

    seed: int
    scenario_name: str
    completed: bool
    summary: Dict
    fault_log: List[str] = field(default_factory=list)
    skipped_faults: List[str] = field(default_factory=list)
    invariant_checks: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.completed and not self.violations

    def report(self) -> str:
        """Canonical, deterministic text rendering of the run."""
        lines = [
            f"chaos scenario {self.scenario_name} (seed {self.seed})",
            f"completed: {self.completed}",
            f"invariant checks: {self.invariant_checks}, "
            f"violations: {len(self.violations)}",
        ]
        lines.extend(f"  {key}: {self.summary[key]!r}"
                     for key in sorted(self.summary))
        lines.extend(f"fault: {entry}" for entry in self.fault_log)
        lines.extend(f"skipped: {entry}" for entry in self.skipped_faults)
        lines.extend(f"VIOLATION: {entry}" for entry in self.violations)
        return "\n".join(lines) + "\n"


class ChaosHarness:
    """Replay a seeded workload under a seeded fault schedule."""

    def __init__(
        self,
        n_nodes: int = 6,
        seed: int = 0,
        scenario: Optional[ChaosScenario] = None,
        n_bats: int = 60,
        queries_per_second: float = 10.0,
        duration: float = 6.0,
        crashes: int = 1,
        rejoin_fraction: float = 1.0,
        degradations: int = 0,
        rehome_policy: str = "fail_fast",
        resilience: bool = False,
        replication: int = 2,
        trace: Optional[str] = None,
        **config_overrides,
    ):
        self.seed = seed
        self.duration = duration
        self.resilience = resilience
        self.trace_path = trace
        config = {
            "n_nodes": n_nodes,
            "seed": seed,
            "bandwidth": 40 * MB,
            "bat_queue_capacity": 15 * MB,
            "resend_timeout": 0.5,
            # escalation keeps chaos runs terminating: backed-off resends,
            # then DATA_UNAVAILABLE
            "resend_backoff_base": 2.0,
            "max_resends": 6,
            "rehome_policy": rehome_policy,
            "disk_latency": 1e-4,
            "load_all_interval": 0.02,
        }
        if resilience:
            config.update(resilience=True, replication_k=replication)
        config.update(config_overrides)
        self.dc = DataCyclotron(DataCyclotronConfig(**config))
        self.dataset = UniformDataset(
            n_bats=n_bats, min_size=MB, max_size=2 * MB, seed=seed
        )
        populate_ring(self.dc, self.dataset)
        self.workload = UniformWorkload(
            self.dataset,
            n_nodes=n_nodes,
            queries_per_second=queries_per_second,
            duration=duration,
            min_bats=1,
            max_bats=3,
            min_proc_time=0.02,
            max_proc_time=0.05,
            seed=seed,
        )
        self.scenario = (
            scenario
            if scenario is not None
            else ChaosScenario.random(
                seed=seed,
                n_nodes=n_nodes,
                duration=duration,
                crashes=crashes,
                rejoin_fraction=rejoin_fraction,
                degradations=degradations,
            )
        )
        # materialised up front so tests can ask which BATs a query needs
        self.specs = {spec.query_id: spec for spec in self.workload.queries()}
        # The invariant checkpoints ride the event bus: the facade
        # publishes NodeCrashed/NodeRejoined/LinkDegraded at the end of
        # each fault action, exactly where the old injector callback ran.
        self.monitor = InvariantMonitor(self.dc)
        self.tracer: Optional[Tracer] = None
        if trace is not None:
            self.tracer = Tracer()
            self.tracer.attach(self.dc.bus)
        self.injector = FaultInjector(self.dc, self.scenario)

    # ------------------------------------------------------------------
    def workload_bats(self, query_id: int) -> List[int]:
        """The distinct BATs ``query_id`` pins (empty if unknown)."""
        spec = self.specs.get(query_id)
        return spec.bat_ids if spec is not None else []

    def run(self, max_time: float = 300.0) -> ChaosResult:
        if self.resilience:
            # Route every query through the retry/failover manager; it
            # dispatches attempts via dc.submit, so run_until_done still
            # balances completions against submissions.
            for spec in self.specs.values():
                self.dc.resilience.submit(spec)
            total = len(self.specs)
        else:
            total = self.dc.submit_all(self.specs.values())
        completed = self.dc.run_until_done(max_time=max_time)
        # grace period: let in-flight orphans reach their next hop and be
        # retired before the terminal audit
        grace = 4.0 * self.dc.config.derived_resend_timeout(self.dataset.mean_size)
        self.dc.run(until=self.dc.now + grace)
        violations = list(self.monitor.violations)
        terminal = check_terminal(self.dc)
        violations.extend(f"terminal: {v}" for v in terminal)
        if self.tracer is not None and self.trace_path is not None:
            self.tracer.detach()
            self.tracer.to_chrome(self.trace_path)
        summary = self.dc.summary()
        summary["queries_submitted"] = total
        return ChaosResult(
            seed=self.seed,
            scenario_name=self.scenario.name,
            completed=completed,
            summary=summary,
            fault_log=list(self.monitor.log),
            skipped_faults=list(self.injector.skipped),
            invariant_checks=self.monitor.checks + 1,
            violations=violations,
        )

def run_chaos(
    seeds=(0,),
    trace_dir=None,
    **harness_kwargs,
) -> List[ChaosResult]:
    """Convenience: one harness run per seed (used by CLI and tests).

    With ``trace_dir`` set, each seed additionally writes a Chrome trace
    to ``<trace_dir>/chaos-seed<N>.trace.json``.
    """
    results = []
    for seed in seeds:
        trace = None
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            trace = os.path.join(trace_dir, f"chaos-seed{seed}.trace.json")
        harness = ChaosHarness(seed=seed, trace=trace, **harness_kwargs)
        harness.injector.arm()
        results.append(harness.run())
    return results
