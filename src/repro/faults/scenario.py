"""Declarative chaos scenarios: what fails, when, and how.

A :class:`ChaosScenario` is an ordered list of fault events --
:class:`NodeCrash`, :class:`NodeRejoin`, :class:`LinkDegrade` -- each
stamped with an absolute simulated time.  Scenarios are plain data: they
serialise to/from dicts (and therefore JSON files for the ``repro
chaos`` CLI) and can be generated deterministically from a seed via
:meth:`ChaosScenario.random`, which draws every choice from named
:class:`~repro.sim.rng.RngRegistry` streams so that changing one knob
never perturbs the others.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.sim.rng import RngRegistry

__all__ = ["NodeCrash", "NodeRejoin", "LinkDegrade", "ChaosScenario"]


@dataclass(frozen=True)
class NodeCrash:
    """Kill ``node`` at time ``at``: volatile state lost, ring repaired."""

    at: float
    node: int
    kind: str = field(default="crash", init=False)


@dataclass(frozen=True)
class NodeRejoin:
    """Restart ``node`` at time ``at`` with an empty hot set."""

    at: float
    node: int
    kind: str = field(default="rejoin", init=False)


@dataclass(frozen=True)
class LinkDegrade:
    """Degrade ``node``'s outgoing channel(s) at time ``at``.

    ``bandwidth_factor`` scales the link rate (0.1 = a 90 % bandwidth
    drop), ``extra_delay`` adds propagation latency (a latency spike),
    ``loss_rate`` overrides the channel's loss probability (a loss
    burst).  ``duration`` auto-heals the link; None is permanent.
    """

    at: float
    node: int
    direction: str = "data"
    bandwidth_factor: float = 1.0
    extra_delay: float = 0.0
    loss_rate: Optional[float] = None
    duration: Optional[float] = None
    kind: str = field(default="degrade", init=False)


FaultEvent = Union[NodeCrash, NodeRejoin, LinkDegrade]

_EVENT_TYPES = {"crash": NodeCrash, "rejoin": NodeRejoin, "degrade": LinkDegrade}


@dataclass
class ChaosScenario:
    """An ordered fault schedule to replay against a ring."""

    events: List[FaultEvent]
    name: str = "chaos"

    def __post_init__(self) -> None:
        for event in self.events:
            if event.at < 0:
                raise ValueError(f"fault scheduled in the past: {event}")
        self.events = sorted(self.events, key=lambda e: (e.at, e.node, e.kind))

    def validate(self, n_nodes: int) -> None:
        """Static sanity checks against a ring of ``n_nodes``."""
        down: set = set()
        for event in self.events:
            if not 0 <= event.node < n_nodes:
                raise ValueError(f"fault targets node {event.node} of {n_nodes}")
            if isinstance(event, NodeCrash):
                if event.node in down:
                    raise ValueError(f"node {event.node} crashed while down")
                down.add(event.node)
                if len(down) >= n_nodes:
                    raise ValueError("scenario kills every node")
            elif isinstance(event, NodeRejoin):
                if event.node not in down:
                    raise ValueError(f"node {event.node} rejoined while up")
                down.discard(event.node)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {"name": self.name, "events": [asdict(e) for e in self.events]}

    @classmethod
    def from_dict(cls, data: Dict) -> "ChaosScenario":
        events: List[FaultEvent] = []
        for raw in data.get("events", []):
            raw = dict(raw)
            kind = raw.pop("kind")
            try:
                event_type = _EVENT_TYPES[kind]
            except KeyError:
                raise ValueError(f"unknown fault kind {kind!r}") from None
            events.append(event_type(**raw))
        return cls(events=events, name=data.get("name", "chaos"))

    # ------------------------------------------------------------------
    # seeded generation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        n_nodes: int,
        duration: float,
        crashes: int = 1,
        rejoin_fraction: float = 1.0,
        degradations: int = 0,
        min_downtime: float = 0.5,
        protected_nodes: Sequence[int] = (),
    ) -> "ChaosScenario":
        """A deterministic crash/rejoin/degradation schedule.

        Crashes hit distinct nodes at times spread over the middle 80 %
        of ``duration``; a ``rejoin_fraction`` of them come back after at
        least ``min_downtime`` seconds.  ``protected_nodes`` are never
        crashed (useful to keep a workload's observer node up).
        """
        if crashes >= n_nodes:
            raise ValueError("cannot crash every node in the ring")
        rng = RngRegistry(seed)
        crash_rng = rng.stream("crash")
        degrade_rng = rng.stream("degrade")
        events: List[FaultEvent] = []

        candidates = [n for n in range(n_nodes) if n not in set(protected_nodes)]
        victims = crash_rng.sample(candidates, min(crashes, len(candidates)))
        lo, hi = 0.1 * duration, 0.9 * duration
        rejoins = max(0, round(rejoin_fraction * len(victims)))
        for i, node in enumerate(victims):
            at = crash_rng.uniform(lo, hi)
            events.append(NodeCrash(at=at, node=node))
            if i < rejoins:
                downtime = crash_rng.uniform(min_downtime, max(min_downtime, 0.3 * duration))
                events.append(NodeRejoin(at=at + downtime, node=node))

        events.extend(
            LinkDegrade(
                at=degrade_rng.uniform(lo, hi),
                node=degrade_rng.randrange(n_nodes),
                direction="data",
                bandwidth_factor=degrade_rng.uniform(0.1, 0.5),
                extra_delay=degrade_rng.uniform(0.0, 5e-3),
                loss_rate=round(degrade_rng.uniform(0.0, 0.2), 3),
                duration=degrade_rng.uniform(0.5, 0.2 * duration + 0.5),
            )
            for _ in range(degradations)
        )
        scenario = cls(events=events, name=f"random-{seed}")
        scenario.validate(n_nodes)
        return scenario
