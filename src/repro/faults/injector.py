"""Schedules a :class:`ChaosScenario` onto a live ring.

The injector turns declarative fault events into calls on the
:class:`~repro.core.ring.DataCyclotron` facade (``crash_node``,
``rejoin_node``, ``degrade_link``) at their scheduled simulation times.
Events that are impossible when they fire -- crashing a node that is
already down, or the last live node -- are skipped and recorded rather
than raised, so randomly generated schedules cannot wedge a run.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.ring import DataCyclotron
from repro.events.types import FaultInjected
from repro.faults.scenario import (
    ChaosScenario,
    FaultEvent,
    LinkDegrade,
    NodeCrash,
    NodeRejoin,
)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Binds one scenario to one deployment and injects its events."""

    def __init__(
        self,
        dc: DataCyclotron,
        scenario: ChaosScenario,
        on_fault: Optional[Callable[[FaultEvent], None]] = None,
    ):
        scenario.validate(dc.config.n_nodes)
        self.dc = dc
        self.scenario = scenario
        self.on_fault = on_fault
        self.injected: List[FaultEvent] = []
        self.skipped: List[str] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every scenario event; call once, before running."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        for event in self.scenario.events:
            self.dc.sim.post_at(event.at, self._fire, event)

    # ------------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        try:
            if isinstance(event, NodeCrash):
                if self.dc.config.resilience:
                    # Resilience mode: inject only the *failure*.  Repair
                    # is the heartbeat detector's job (NodeConfirmedDead
                    # -> repair_after_failure), not the injector's.
                    self.dc.fail_node(event.node)
                else:
                    self.dc.crash_node(event.node)
            elif isinstance(event, NodeRejoin):
                self.dc.rejoin_node(event.node)
            elif isinstance(event, LinkDegrade):
                self.dc.degrade_link(
                    event.node,
                    direction=event.direction,
                    bandwidth_factor=event.bandwidth_factor,
                    extra_delay=event.extra_delay,
                    loss_rate=event.loss_rate,
                    duration=event.duration,
                )
            else:  # pragma: no cover - scenario.validate guards this
                raise TypeError(f"unknown fault event {event!r}")
        except ValueError as exc:
            self.skipped.append(f"t={event.at:.3f} {event.kind} node={event.node}: {exc}")
            return
        self.injected.append(event)
        self.dc.bus.publish(FaultInjected(self.dc.now, event.kind, event.node))
        if self.on_fault is not None:
            self.on_fault(event)
