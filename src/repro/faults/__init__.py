"""Fault injection for the Data Cyclotron (docs/faults.md).

The paper's robustness story (section 4.2.3) covers message loss only;
this subsystem extends it with whole-node crashes, restarts, and link
degradation, scheduled as ordinary simulation events from a declarative
:class:`ChaosScenario`.  The :class:`ChaosHarness` replays fixed-seed
scenarios against a workload and checks ring-level invariants after
every injected fault.
"""

from repro.faults.harness import ChaosHarness, ChaosResult
from repro.faults.injector import FaultInjector
from repro.faults.invariants import check_invariants, check_terminal
from repro.faults.scenario import (
    ChaosScenario,
    LinkDegrade,
    NodeCrash,
    NodeRejoin,
)

__all__ = [
    "ChaosHarness",
    "ChaosResult",
    "ChaosScenario",
    "FaultInjector",
    "LinkDegrade",
    "NodeCrash",
    "NodeRejoin",
    "check_invariants",
    "check_terminal",
]
