#!/usr/bin/env python3
"""Hot-set dynamics under a turbulent workload (paper section 5.2).

Replays a scaled-down version of the paper's skewed scenario: four
workload phases SW1..SW4 (Table 3) with overlapping time windows and
disjoint hot sets DH1..DH4.  Watch the ring replace one phase's data
with the next one's while in-flight queries keep being served, and the
per-node LOIT thresholds ride the buffer-load watermarks.

Run:  python examples/hot_set_dynamics.py
"""

from repro.core import DataCyclotron, DataCyclotronConfig, MB
from repro.metrics.report import render_series
from repro.workloads.base import UniformDataset, populate_ring
from repro.workloads.skewed import SkewedWorkload, paper_phases


def main() -> None:
    dataset = UniformDataset(n_bats=200, min_size=MB, max_size=2 * MB, seed=11)
    config = DataCyclotronConfig(
        n_nodes=4,
        bandwidth=40 * MB,          # scaled with the data volume
        bat_queue_capacity=15 * MB,
        resend_timeout=5.0,
        loit_adapt_interval=0.1,
        seed=11,
    )
    phases = paper_phases(time_scale=0.2, rate_scale=0.15)
    workload = SkewedWorkload(
        dataset, phases, n_nodes=4,
        min_bats=1, max_bats=3, min_proc_time=0.05, max_proc_time=0.1, seed=11,
    )

    dc = DataCyclotron(config)
    populate_ring(dc, dataset, tags=workload.bat_tags())
    total = workload.submit_to(dc)
    print(f"submitted {total} queries across phases:")
    for phase in phases:
        subset = workload.disjoint_subset(phase)
        print(
            f"  {phase.name}: skew {phase.skew}, window "
            f"[{phase.start:.1f}s, {phase.end:.1f}s), "
            f"{phase.queries_per_second:.0f} q/s, |DH|={len(subset)} BATs"
        )

    assert dc.run_until_done(max_time=600.0)
    metrics = dc.metrics
    end = phases[-1].end * 1.3

    print("\n=== ring space per disjoint hot set (paper Figure 8a) ===")
    times, series = metrics.ring_bytes.grid(end, step=end / 40)
    print(render_series("total MB", times, [b / 2**20 for b in series]))
    for tag in sorted(metrics.ring_bytes_by_tag):
        t, s = metrics.ring_bytes_by_tag[tag].grid(end, step=end / 40)
        print(render_series(f"{tag} MB", t, [b / 2**20 for b in s]))

    print("\n=== queries finished per workload (paper Figure 8b) ===")
    for phase in phases:
        t, counts = metrics.throughput_series(end, step=end / 40, tag=phase.name)
        print(render_series(phase.name, t, [float(c) for c in counts]))

    print("\n=== adaptive LOIT at node 0 ===")
    for time, threshold in dc.nodes[0].loit_history:
        print(f"  t={time:6.2f}s  LOIT -> {threshold}")

    print(f"\nall {metrics.finished_count()} queries finished;"
          f" {metrics.loit_changes} LOIT adjustments across the ring")


if __name__ == "__main__":
    main()
