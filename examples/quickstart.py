#!/usr/bin/env python3
"""Quickstart: distributed SQL over a Data Cyclotron storage ring.

Builds a four-node ring, loads two partitioned tables whose column BATs
are spread over the nodes, and answers SQL queries submitted at
arbitrary nodes -- each query's data flows past on the ring, exactly as
in the paper's Figure 2.  Also prints the MAL plan before and after the
DC optimizer (the paper's Tables 1 and 2).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import DataCyclotronConfig
from repro.dbms import Database
from repro.dbms.executor import RingDatabase


def main() -> None:
    rng = np.random.default_rng(42)
    n_items, n_orders = 5_000, 20_000
    items = {
        "id": np.arange(n_items),
        "price": np.round(rng.uniform(1, 500, n_items), 2),
        "category": rng.integers(0, 20, n_items),
    }
    orders = {
        "item_id": rng.integers(0, n_items, n_orders),
        "quantity": rng.integers(1, 10, n_orders),
        "day": rng.integers(0, 365, n_orders),
    }

    # ------------------------------------------------------------------
    # the paper's Tables 1 and 2: a plan before / after the DC optimizer
    # ------------------------------------------------------------------
    local = Database()
    local.load_table("items", items)
    local.load_table("orders", orders)
    sql = "SELECT items.price FROM items, orders WHERE orders.item_id = items.id LIMIT 3"
    print("=== MAL plan (paper Table 1) ===")
    print(local.explain(sql))
    print("\n=== after the DC optimizer (paper Table 2) ===")
    print(local.explain_dc(sql))

    # ------------------------------------------------------------------
    # a four-node storage ring answering real queries
    # ------------------------------------------------------------------
    ring = RingDatabase(DataCyclotronConfig(n_nodes=4, seed=42))
    ring.load_table("items", items, rows_per_partition=1_250)
    ring.load_table("orders", orders, rows_per_partition=5_000)

    queries = [
        ("node 0", "SELECT count(*) n FROM orders WHERE day < 31"),
        ("node 1", "SELECT category, sum(price) total FROM items "
                   "GROUP BY category ORDER BY total DESC LIMIT 5"),
        ("node 2", "SELECT items.id, price, quantity FROM items, orders "
                   "WHERE orders.item_id = items.id AND price > 495 "
                   "ORDER BY price DESC LIMIT 5"),
        ("node 3", "SELECT sum(price * quantity) revenue FROM items, orders "
                   "WHERE orders.item_id = items.id AND day BETWEEN 180 AND 210"),
    ]
    handles = [
        (label, ring.submit(sql, node=i, arrival=0.01 * i))
        for i, (label, sql) in enumerate(queries)
    ]
    assert ring.run_until_done(max_time=600.0), "ring did not finish"

    print("\n=== distributed query results ===")
    for label, handle in handles:
        print(f"\n[{label}] {handle.sql}")
        for row in handle.result.rows():
            print("   ", row)

    m = ring.metrics
    lifetimes = m.lifetimes()
    print("\n=== ring statistics ===")
    print(f"queries executed      : {m.finished_count()}")
    print(f"mean query lifetime   : {sum(lifetimes) / len(lifetimes):.4f} s")
    print(f"BATs loaded into ring : {sum(s.loads for s in m.bats.values())}")
    print(f"BAT messages forwarded: {m.bat_messages_forwarded}")
    print(f"requests absorbed     : {m.requests_absorbed}")


if __name__ == "__main__":
    main()
