#!/usr/bin/env python3
"""A tour of the section 6 future-work features.

Demonstrates, on one small ring:

1. nomadic query placement via cost bids (section 6.1),
2. intra-query parallelism over disjoint BAT subsets (section 6.1),
3. intermediate-result circulation with hit statistics (section 6.2),
4. the pulsating-ring decision rule (section 6.3),
5. multi-version updates with stale-read tolerance (section 6.4).

Run:  python examples/extensions_tour.py
"""

from repro.core import DataCyclotron, DataCyclotronConfig, MB, QuerySpec
from repro.xtn.bidding import BidScheduler
from repro.xtn.parallel import submit_parallel
from repro.xtn.pulsating import PulsatingController
from repro.xtn.result_cache import ResultCache
from repro.xtn.updates import UpdateCoordinator


def fresh_ring() -> DataCyclotron:
    dc = DataCyclotron(DataCyclotronConfig(n_nodes=4, seed=5, loit_static=0.05))
    for bat_id in range(12):
        dc.add_bat(bat_id, size=(1 + bat_id % 3) * MB)
    return dc


def demo_bidding() -> None:
    print("=== 1. nomadic placement via cost bids ===")
    dc = fresh_ring()
    scheduler = BidScheduler(dc, load_weight=0.5, data_weight=1e-9)
    specs = [
        QuerySpec.simple(q, node=0, arrival=0.01 * q,
                         bat_ids=[(q * 5 + 1) % 12], processing_times=[0.05])
        for q in range(12)
    ]
    scheduler.submit_placed(specs)
    assert dc.run_until_done(max_time=120.0)
    print(f"   all queries entered at node 0; settled as {scheduler.placement_counts()}")


def demo_parallel() -> None:
    print("\n=== 2. intra-query parallelism ===")
    dc = fresh_ring()
    heavy = QuerySpec.simple(
        1, node=0, arrival=0.0, bat_ids=list(range(1, 9)),
        processing_times=[0.1] * 8,
    )
    done = []
    subs = submit_parallel(dc, heavy, n_subqueries=4, merge_cost=0.01,
                           on_done=done.append)
    assert dc.run_until_done(max_time=120.0)
    dc.run(until=dc.now + 0.1)
    print(f"   8-BAT query split into {len(subs)} sub-queries on nodes "
          f"{[s.node for s in subs]}; combined result at t={done[0]:.3f}s "
          f"(serial net time would be {heavy.net_execution_time:.1f}s of CPU)")


def demo_result_cache() -> None:
    print("\n=== 3. intermediate-result circulation ===")
    dc = fresh_ring()
    cache = ResultCache(dc)
    if cache.lookup("join(t,c)|filter(x>3)") is None:
        entry = cache.publish("join(t,c)|filter(x>3)", size=2 * MB, owner=1)
        print(f"   published intermediate as BAT {entry.bat_id} owned by node 1")
    # two later queries at other nodes reuse it straight from the ring
    for q, node in ((10, 0), (11, 3)):
        hit = cache.lookup("join(t,c)|filter(x>3)")
        dc.submit(QuerySpec.simple(q, node=node, arrival=0.05 * q,
                                   bat_ids=[hit.bat_id], processing_times=[0.02]))
    assert dc.run_until_done(max_time=120.0)
    print(f"   cache hit rate {cache.hit_rate:.0%}; the intermediate was "
          f"loaded {dc.metrics.bats[hit.bat_id].loads} time(s) and reused from the ring")


def demo_pulsating() -> None:
    print("\n=== 4. pulsating-ring decision rule ===")
    controller = PulsatingController(leave_threshold=0.15, join_threshold=0.9,
                                     patience=3)
    samples = [0.05, 0.08, 0.06, 0.5, 0.95]
    for load in samples:
        action = controller.observe(node=2, exploitation=load)
        print(f"   node 2 exploitation {load:.2f} -> {action or 'stay'}")
    print(f"   ring-level recommendation at mean load 0.05: "
          f"{controller.recommend_size(10, [0.05] * 10)} nodes (from 10)")


def demo_updates() -> None:
    print("\n=== 5. multi-version updates ===")
    dc = fresh_ring()
    coordinator = UpdateCoordinator(dc)
    # a reader gets version 0 circulating
    dc.submit(QuerySpec.simple(0, node=0, arrival=0.0, bat_ids=[5],
                               processing_times=[0.05]))
    # two concurrent updates on the same BAT serialise via the tag
    first = coordinator.submit_update(bat_id=5, node=1, apply_time=0.05, arrival=0.02)
    second = coordinator.submit_update(bat_id=5, node=3, apply_time=0.05, arrival=0.03)
    assert dc.run_until_done(max_time=120.0)
    print(f"   update A: v{first.new_version} at t={first.completed_at:.3f}s "
          f"(waited for tag: {first.waited_for_lock})")
    print(f"   update B: v{second.new_version} at t={second.completed_at:.3f}s "
          f"(waited for tag: {second.waited_for_lock})")
    print(f"   catalog now at version {coordinator.current_version(5)}; "
          f"stale copies retire at the owner on their next pass")


if __name__ == "__main__":
    demo_bidding()
    demo_parallel()
    demo_result_cache()
    demo_pulsating()
    demo_updates()
