#!/usr/bin/env python3
"""Data Cyclotron vs the broadcast architectures of the related work.

The paper's section 7 positions the Data Cyclotron against DataCycle
(broadcast the whole database from a central pump, repeatedly) and
Broadcast Disks (tier the broadcast by popularity).  This example makes
the contrast concrete: the same Gaussian query stream runs against all
three systems at the same link bandwidth.

Run:  python examples/broadcast_comparison.py
"""

import math
import statistics

from repro.baselines import BroadcastDisks, DataCycle
from repro.core import DataCyclotron, DataCyclotronConfig, MB
from repro.metrics.report import render_table
from repro.workloads.base import UniformDataset, populate_ring
from repro.workloads.gaussian import GaussianWorkload


def build_workload(dataset: UniformDataset, n_nodes: int, seed: int) -> GaussianWorkload:
    return GaussianWorkload(
        dataset, n_nodes=n_nodes, queries_per_second=15, duration=8,
        mean=dataset.n_bats / 2, std=dataset.n_bats / 20,
        min_bats=1, max_bats=2, min_proc_time=0.03, max_proc_time=0.06,
        seed=seed,
    )


def main() -> None:
    seed = 19
    n_nodes, bandwidth = 4, 40 * MB
    dataset = UniformDataset(n_bats=300, min_size=MB, max_size=2 * MB, seed=seed)
    hot_bytes = sum(
        size for bat_id, size in dataset.sizes.items()
        if abs(bat_id - 150) <= 30
    )
    print(f"database: {dataset.total_bytes / 2**20:.0f} MB in {dataset.n_bats} BATs; "
          f"the Gaussian hot set (±2σ) is only ~{hot_bytes / 2**20:.0f} MB")

    results = {}

    dc = DataCyclotron(DataCyclotronConfig(
        n_nodes=n_nodes, bandwidth=bandwidth, bat_queue_capacity=15 * MB,
        resend_timeout=5.0, seed=seed,
    ))
    populate_ring(dc, dataset)
    build_workload(dataset, n_nodes, seed).submit_to(dc)
    assert dc.run_until_done(max_time=900.0)
    results["data cyclotron"] = dc.metrics.lifetimes()

    pump = DataCycle(bandwidth=bandwidth)
    for bat_id, size in dataset.sizes.items():
        pump.add_bat(bat_id, size)
    build_workload(dataset, n_nodes, seed).submit_to(pump)
    assert pump.run_until_done(max_time=3600.0)
    results["datacycle"] = pump.metrics.lifetimes()
    print(f"\nDataCycle cycle time (whole DB broadcast): {pump.cycle_time:.1f}s")

    disks = BroadcastDisks(bandwidth=bandwidth, rel_freqs=(8, 2, 1))
    for bat_id, size in dataset.sizes.items():
        popularity = math.exp(-((bat_id - 150) ** 2) / (2 * 15**2))
        disks.add_bat(bat_id, size, popularity=popularity)
    build_workload(dataset, n_nodes, seed).submit_to(disks)
    assert disks.run_until_done(max_time=3600.0)
    results["broadcast disks (oracle)"] = disks.metrics.lifetimes()

    print()
    print(render_table(
        ["system", "mean lifetime (s)", "p95 (s)", "max (s)"],
        [
            (
                name,
                round(statistics.mean(v), 2),
                round(sorted(v)[int(0.95 * len(v))], 2),
                round(max(v), 2),
            )
            for name, v in results.items()
        ],
        title="identical Gaussian query stream, identical link bandwidth:",
    ))
    print("\nthe self-organising hot set needs no popularity oracle and no"
          "\ncentral pump -- and still wins (paper section 7's contrast).")

    print("\n=== ring summary ===")
    for key, value in dc.summary().items():
        print(f"  {key:>24}: {value}")


if __name__ == "__main__":
    main()
