#!/usr/bin/env python3
"""TPC-H trace replay: throughput scaling with ring size (paper §5.4).

Follows the paper's method end to end: generate a TPC-H-like database,
run the 22 queries against the local column engine to *calibrate*
per-operator traces (the OpT pin-scheduling rule), then replay the
traces on simulated rings of growing size with four CPU cores per node
-- reproducing the shape of the paper's Table 4.

Run:  python examples/tpch_scaleout.py
"""

from repro.metrics.report import render_table
from repro.workloads.tpch import TpchExperiment


def main() -> None:
    print("calibrating the 22 TPC-H query traces against the local engine...")
    experiment = TpchExperiment(scale_factor=0.005, seed=1)
    print(f"  time scale: x{experiment.time_scale:.0f} "
          f"(normalised to ~1.05 core-seconds mean, as Table 4 implies)")
    print("\nfastest and slowest calibrated queries:")
    for trace in experiment.traces[:3] + experiment.traces[-3:]:
        print(f"  q{trace.number:>2} ({trace.name[:32]:<32}) "
              f"net={trace.net_time:6.2f}s pins={len(trace.steps)}")

    queries_per_node = 150
    rows = []
    single = experiment.run(1, queries_per_node=queries_per_node, size_scale=200.0)
    rows.append(experiment.monetdb_row(single))
    rows.append(single)
    rows.extend(
        experiment.run(n, queries_per_node=queries_per_node, size_scale=200.0)
        for n in (2, 3, 4, 6, 8)
    )

    print("\n" + render_table(
        ["#nodes", "exec(sec)", "throughput", "throughP/node", "CPU%"],
        [r.row() for r in rows],
        title=f"Table 4 shape at {queries_per_node} queries/node:",
    ))
    print(
        "\npaper's SF-5 numbers for comparison: MonetDB 420s/2.8/70%;"
        " 1 node 317s/3.8/99.7%; 8 nodes 371s/25.8 (3.2 per node)/85.3%"
    )


if __name__ == "__main__":
    main()
