#!/usr/bin/env python3
"""Shifting analytical sessions over a functional ring (paper section 1).

The paper's motivation: "datawarehouses and scientific database
applications shift their focus almost with every session.  This leads
to a short retention period for data- and workload-allocation
decisions."  Static partitioning schemes re-organise; the Data
Cyclotron just lets the hot set drift.

This example runs three analyst sessions against one RingDatabase --
each session hammering a *different* table -- and shows the hot set
following the session focus with no re-partitioning, plus the §6.2
result cache absorbing each session's repeated queries.

Run:  python examples/session_shift_analytics.py
"""

import numpy as np

from repro.core import DataCyclotronConfig
from repro.dbms.executor import RingDatabase


def hot_bytes_by_table(ring: RingDatabase) -> dict:
    loads = {}
    for handle in ring.catalog.all_handles():
        stats = ring.metrics.bats.get(handle.bat_id)
        if stats is not None and stats.loads > 0:
            loads[handle.table] = loads.get(handle.table, 0) + stats.loads
    return loads


def main() -> None:
    rng = np.random.default_rng(21)
    n = 10_000
    ring = RingDatabase(
        DataCyclotronConfig(n_nodes=4, seed=21),
        cache_intermediates=True,
        cache_min_bytes=4 * 1024,
    )
    # three independent subject areas, all partitioned over the ring
    ring.load_table("sales", {
        "day": rng.integers(0, 365, n),
        "store": rng.integers(0, 50, n),
        "revenue": np.round(rng.random(n) * 1000, 2),
    }, rows_per_partition=2_500)
    ring.load_table("sensors", {
        "hour": rng.integers(0, 24 * 30, n),
        "device": rng.integers(0, 200, n),
        "reading": rng.normal(20.0, 5.0, n),
    }, rows_per_partition=2_500)
    ring.load_table("logs", {
        "ts": rng.integers(0, 10_000, n),
        "severity": rng.integers(0, 5, n),
        "latency": np.abs(rng.normal(80.0, 30.0, n)),
    }, rows_per_partition=2_500)

    sessions = [
        ("sales analyst", [
            "SELECT store, sum(revenue) r FROM sales GROUP BY store ORDER BY r DESC LIMIT 5",
            "SELECT sum(revenue) total FROM sales WHERE day BETWEEN 0 AND 90",
            "SELECT store, count(*) n FROM sales WHERE revenue > 900 GROUP BY store ORDER BY n DESC LIMIT 3",
        ]),
        ("sensor scientist", [
            "SELECT device, avg(reading) m FROM sensors GROUP BY device ORDER BY m DESC LIMIT 5",
            "SELECT count(*) anomalies FROM sensors WHERE reading > 35",
            "SELECT device, max(reading) peak FROM sensors WHERE hour < 240 GROUP BY device ORDER BY peak DESC LIMIT 3",
        ]),
        ("sre on call", [
            "SELECT severity, count(*) n, avg(latency) l FROM logs GROUP BY severity ORDER BY severity",
            "SELECT count(*) slow FROM logs WHERE latency > 150 AND severity >= 3",
            "SELECT severity, count(*) n FROM logs WHERE ts > 9000 GROUP BY severity ORDER BY n DESC",
        ]),
    ]

    clock = 0.0
    for session_name, queries in sessions:
        print(f"\n=== session: {session_name} ===")
        before = hot_bytes_by_table(ring)
        handles = []
        for repeat in range(2):  # analysts re-run their dashboards
            for i, sql in enumerate(queries):
                handles.append(ring.submit(sql, node=(i + repeat) % 4,
                                           arrival=clock))
                clock += 0.05
        assert ring.run_until_done(max_time=clock + 600.0)
        clock = ring.dc.now
        for handle in handles[: len(queries)]:
            print(f"  {handle.sql[:68]}...")
            for row in handle.result.rows()[:3]:
                print(f"     {row}")
        after = hot_bytes_by_table(ring)
        moved = {t: after.get(t, 0) - before.get(t, 0) for t in after}
        print(f"  BAT loads this session (hot set follows the focus): {moved}")

    cache = ring.result_cache
    print(f"\nresult cache: {cache.publishes} intermediates published, "
          f"hit rate {cache.hit_rate:.0%} across repeated dashboards")
    print("no re-partitioning, no allocation wizard: the ring adapted by itself")


if __name__ == "__main__":
    main()
