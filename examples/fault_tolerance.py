#!/usr/bin/env python3
"""Robustness under packet loss and queue overflow (paper section 4.2.3).

"A resend() function is triggered by a timeout on the rotational delay
for BATs requested into the storage ring.  It indicates a package loss.
... These functions make the Data Cyclotron robust against request
losses and starvation due to scheduling anomalies."

This example injects three failure modes and shows every query still
completing:

1. 20 % loss on the data channels (circulating BATs vanish mid-flight),
2. 50 % loss on the request channels,
3. BAT queues sized so small that DropTail overflow is routine.

Run:  python examples/fault_tolerance.py
"""

from repro.core import DataCyclotron, DataCyclotronConfig, MB
from repro.workloads.base import UniformDataset, populate_ring
from repro.workloads.uniform import UniformWorkload


def run_scenario(label: str, **config_overrides) -> None:
    dataset = UniformDataset(n_bats=60, min_size=MB, max_size=2 * MB, seed=17)
    settings = {
        "n_nodes": 4,
        "bandwidth": 40 * MB,
        "bat_queue_capacity": 12 * MB,
        "resend_timeout": 0.5,
        "seed": 17,
    }
    settings.update(config_overrides)
    config = DataCyclotronConfig(**settings)
    dc = DataCyclotron(config)
    populate_ring(dc, dataset)
    workload = UniformWorkload(
        dataset, n_nodes=4, queries_per_second=10, duration=5,
        min_bats=1, max_bats=2, min_proc_time=0.02, max_proc_time=0.05, seed=17,
    )
    total = workload.submit_to(dc)
    finished = dc.run_until_done(max_time=600.0)
    m = dc.metrics
    lifetimes = m.lifetimes()
    print(f"\n=== {label} ===")
    print(f"queries           : {m.finished_count()}/{total} "
          f"({'all recovered' if finished else 'TIMED OUT'})")
    print(f"mean / max lifetime: {sum(lifetimes) / len(lifetimes):.2f}s / "
          f"{max(lifetimes):.2f}s")
    print(f"loss drops        : {m.loss_drops}")
    print(f"DropTail drops    : {m.droptail_drops}")
    print(f"request resends   : {m.resends}")
    assert finished, f"{label}: queries left behind!"


def main() -> None:
    run_scenario("baseline (no faults)")
    run_scenario("20% data-channel loss", data_loss_rate=0.20)
    run_scenario("50% request-channel loss", request_loss_rate=0.50)
    run_scenario("overflowing 3 MB queues", bat_queue_capacity=3 * MB)
    run_scenario(
        "everything at once",
        data_loss_rate=0.10,
        request_loss_rate=0.25,
        bat_queue_capacity=4 * MB,
    )
    print("\nall scenarios recovered: the ring is self-healing, as §4.2.3 claims")


if __name__ == "__main__":
    main()
